#!/usr/bin/env python3
"""Diff two RunReport documents and attribute latency deltas to stages.

Usage:
  report_diff.py BASELINE.json CURRENT.json [--threshold 0.10] [--top 3]
  report_diff.py --validate FILE.json [FILE2.json ...]

Diff mode pairs reports by label, compares end-to-end latency and
throughput, and attributes the latency delta to the task phases (and I/O
servers) that moved — output like:

  [report-diff] sim paragon-pfs16 embedded n=50: latency +12.0%
      pulse compression: +8.1e-03 s (compute p95 +31%)
      io server 3: service p50 2.10x

Exit codes: 0 = within threshold, 1 = regression above threshold,
2 = bad input (unreadable file, schema violation, no matching labels).

Validate mode checks a document against the RunReport schema
(schema_version 1, see src/obs/report.hpp and DESIGN.md section 11):
required keys with the right types, histogram consistency
(count == sum of bucket counts, p50 <= p95 <= p99), bucket indices
in range and ascending. Unknown keys are ignored by design — adding a
key is not a schema break.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1


def fail(msg):
    print(f"[report-diff] error: {msg}", file=sys.stderr)
    sys.exit(2)


def load_document(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or "reports" not in doc:
        fail(f"{path}: not a RunReport document (missing 'reports')")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{path}: schema_version {doc.get('schema_version')!r}, "
             f"expected {SCHEMA_VERSION}")
    return doc


# --------------------------------------------------------------- validate --

def check(cond, path, where, what):
    if not cond:
        fail(f"{path}: {where}: {what}")


def validate_histogram(h, path, where):
    check(isinstance(h, dict), path, where, "histogram must be an object")
    for key, types in (("count", int), ("sum", (int, float)),
                       ("min", (int, float)), ("max", (int, float)),
                       ("p50", (int, float)), ("p95", (int, float)),
                       ("p99", (int, float)), ("buckets", list)):
        check(key in h, path, where, f"histogram missing '{key}'")
        check(isinstance(h[key], types), path, where,
              f"histogram '{key}' has wrong type")
    total = 0
    prev_index = -1
    for pair in h["buckets"]:
        check(isinstance(pair, list) and len(pair) == 2, path, where,
              "bucket entries must be [index, count] pairs")
        index, count = pair
        check(isinstance(index, int) and 0 <= index < 128, path, where,
              f"bucket index {index} out of range")
        check(index > prev_index, path, where, "bucket indices must ascend")
        check(isinstance(count, int) and count > 0, path, where,
              f"bucket count {count} must be a positive integer")
        prev_index = index
        total += count
    check(total == h["count"], path, where,
          f"count {h['count']} != bucket total {total}")
    if h["count"] > 0:
        check(h["min"] <= h["max"], path, where, "min > max")
        check(h["p50"] <= h["p95"] <= h["p99"], path, where,
              "quantiles not monotone (p50 <= p95 <= p99)")


def validate_report(r, path, index):
    where = f"reports[{index}]"
    check(isinstance(r, dict), path, where, "report must be an object")
    for key, types in (("label", str), ("kind", str), ("geometry", dict),
                       ("config", dict), ("totals", dict), ("tasks", list)):
        check(key in r, path, where, f"missing '{key}'")
        check(isinstance(r[key], types), path, where, f"'{key}' has wrong type")
    check(r["kind"] in ("functional", "sim"), path, where,
          f"unknown kind {r['kind']!r}")
    where = f"reports[{index}] ({r['label']!r})"
    for key in ("channels", "pulses", "ranges", "beams", "doppler_bins",
                "cube_bytes"):
        check(isinstance(r["geometry"].get(key), int), path, where,
              f"geometry.{key} missing or not an integer")
    for key in ("io_strategy", "simd_backend"):
        check(isinstance(r["config"].get(key), str), path, where,
              f"config.{key} missing or not a string")
    for key in ("stripe_factor", "cpis", "warmup", "total_nodes"):
        check(isinstance(r["config"].get(key), int), path, where,
              f"config.{key} missing or not an integer")
    for key in ("throughput_cpis_per_s", "latency_s", "wall_s", "cpu_s"):
        check(isinstance(r["totals"].get(key), (int, float)), path, where,
              f"totals.{key} missing or not a number")
    for t in r["tasks"]:
        check(isinstance(t.get("name"), str), path, where, "task missing name")
        check(isinstance(t.get("nodes"), int), path, where,
              f"task {t.get('name')!r} missing nodes")
        check(isinstance(t.get("phases"), list), path, where,
              f"task {t['name']!r} missing phases")
        for ph in t["phases"]:
            pwhere = f"{where} task {t['name']!r} phase {ph.get('name')!r}"
            check(isinstance(ph.get("name"), str), path, pwhere,
                  "phase missing name")
            check(isinstance(ph.get("mean_s"), (int, float)), path, pwhere,
                  "phase missing mean_s")
            validate_histogram(ph.get("hist"), path, pwhere)
    if "io" in r:
        io = r["io"]
        check(isinstance(io, dict), path, where, "'io' must be an object")
        for key in ("queue_depth", "service_time", "submit_latency"):
            validate_histogram(io.get(key), path, f"{where} io.{key}")
        check(isinstance(io.get("servers"), list), path, where,
              "io.servers missing")
        for s in io["servers"]:
            check(isinstance(s.get("id"), int), path, where,
                  "io server missing id")
            validate_histogram(s.get("service_time"), path,
                               f"{where} io server {s.get('id')}")
    if "recovery" in r:
        check(isinstance(r["recovery"], dict), path, where,
              "'recovery' must be an object")


def cmd_validate(paths):
    for path in paths:
        doc = load_document(path)
        labels = set()
        for i, r in enumerate(doc["reports"]):
            validate_report(r, path, i)
            if r["label"] in labels:
                print(f"[report-diff] warning: {path}: duplicate label "
                      f"{r['label']!r} (diff uses the first)", file=sys.stderr)
            labels.add(r["label"])
        print(f"[report-diff] {path}: OK "
              f"({len(doc['reports'])} report(s), schema v{SCHEMA_VERSION})")
    return 0


# ------------------------------------------------------------------- diff --

def by_label(doc):
    out = {}
    for r in doc["reports"]:
        out.setdefault(r["label"], r)  # first occurrence wins
    return out


def ratio(cur, base):
    if base == 0:
        return None
    return cur / base


def fmt_pct(r):
    return f"{(r - 1.0) * 100.0:+.1f}%"


def phase_quantiles(phase):
    h = phase["hist"]
    if h["count"] > 0:
        return h["p50"], h["p95"]
    # Sim phases carry modeled scalars with empty histograms.
    return phase["mean_s"], phase["mean_s"]


def task_total(task):
    # Prefer the measured phase means; sim's "service" phase duplicates
    # receive+compute+send in the clean case, so only count the classic
    # three toward the task total.
    return sum(p["mean_s"] for p in task["phases"]
               if p["name"] in ("receive", "compute", "send"))


def diff_tasks(base, cur):
    """Per-task contribution to the latency delta, largest first."""
    base_tasks = {t["name"]: t for t in base["tasks"]}
    rows = []
    for t in cur["tasks"]:
        bt = base_tasks.get(t["name"])
        if bt is None:
            continue
        delta = task_total(t) - task_total(bt)
        details = []
        base_phases = {p["name"]: p for p in bt["phases"]}
        for p in t["phases"]:
            bp = base_phases.get(p["name"])
            if bp is None:
                continue
            _, bp95 = phase_quantiles(bp)
            _, cp95 = phase_quantiles(p)
            r = ratio(cp95, bp95)
            if r is not None and abs(r - 1.0) > 0.05:
                details.append(f"{p['name']} p95 {fmt_pct(r)}")
        rows.append((delta, t["name"], details))
    rows.sort(key=lambda row: -abs(row[0]))
    return rows


def diff_servers(base, cur):
    """Per-I/O-server service-time ratios (p50), largest first."""
    if "io" not in base or "io" not in cur:
        return []
    base_servers = {s["id"]: s for s in base["io"]["servers"]}
    rows = []
    for s in cur["io"]["servers"]:
        bs = base_servers.get(s["id"])
        if bs is None:
            continue
        bh, ch = bs["service_time"], s["service_time"]
        if bh["count"] == 0 or ch["count"] == 0:
            continue
        r = ratio(ch["p50"], bh["p50"])
        if r is not None and abs(r - 1.0) > 0.10:
            rows.append((r, s["id"]))
    rows.sort(key=lambda row: -abs(row[0] - 1.0))
    return rows


DEFENSE_COUNTERS = ("hedges_launched", "hedge_wins", "hedge_cancels",
                    "chunks_stolen", "deadline_expired", "breaker_reopened")


def diff_straggler_defense(base, cur):
    """One-line attribution of straggler-defense activity: which adaptive
    mechanisms (hedging, stealing, breaker probes) moved between the two
    runs. Empty string when neither run exercised the scheduler."""
    parts = []
    base_io, cur_io = base.get("io", {}), cur.get("io", {})
    for key in DEFENSE_COUNTERS:
        b, c = base_io.get(key, 0), cur_io.get(key, 0)
        if b or c:
            parts.append(f"{key} {b}->{c}")
    return ", ".join(parts)


def cmd_diff(baseline_path, current_path, threshold, top):
    base_doc = load_document(baseline_path)
    cur_doc = load_document(current_path)
    base_by, cur_by = by_label(base_doc), by_label(cur_doc)
    common = [label for label in cur_by if label in base_by]
    if not common:
        fail("no matching report labels between the two documents")

    regressed = False
    for label in common:
        base, cur = base_by[label], cur_by[label]
        lat_r = ratio(cur["totals"]["latency_s"], base["totals"]["latency_s"])
        thr_r = ratio(base["totals"]["throughput_cpis_per_s"],
                      cur["totals"]["throughput_cpis_per_s"])
        headline = []
        if lat_r is not None:
            headline.append(f"latency {fmt_pct(lat_r)}")
        if thr_r is not None:
            headline.append(f"throughput {fmt_pct(1.0 / thr_r)}")
        bad = ((lat_r is not None and lat_r > 1.0 + threshold) or
               (thr_r is not None and thr_r > 1.0 + threshold))
        marker = "REGRESSION" if bad else "ok"
        print(f"[report-diff] {label}: {', '.join(headline) or 'no totals'} "
              f"[{marker}]")
        # Attribution: always shown on regression, and for any task that
        # moved more than the threshold even when totals held (a shifted
        # bottleneck can hide a stage regression).
        for delta, name, details in diff_tasks(base, cur)[:top]:
            if not bad and abs(delta) < threshold * max(
                    base["totals"]["latency_s"], 1e-12):
                continue
            note = f" ({', '.join(details)})" if details else ""
            print(f"    {name}: {delta:+.3e} s{note}")
        for r, server_id in diff_servers(base, cur)[:top]:
            print(f"    io server {server_id}: service p50 {r:.2f}x")
        defense = diff_straggler_defense(base, cur)
        if defense:
            print(f"    straggler defense: {defense}")
        if bad:
            regressed = True

    missing = [label for label in base_by if label not in cur_by]
    for label in missing:
        print(f"[report-diff] warning: baseline label {label!r} absent from "
              f"current document", file=sys.stderr)
    print(f"[report-diff] compared {len(common)} report(s), "
          f"threshold {threshold * 100:.0f}%: "
          f"{'REGRESSION' if regressed else 'PASS'}")
    return 1 if regressed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+",
                    help="BASELINE CURRENT, or files for --validate")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the given documents instead of diffing")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression gate (default 0.10 = 10%%)")
    ap.add_argument("--top", type=int, default=3,
                    help="max attributed stages/servers per report")
    args = ap.parse_args()

    if args.validate:
        return cmd_validate(args.files)
    if len(args.files) != 2:
        ap.error("diff mode takes exactly two files: BASELINE CURRENT")
    return cmd_diff(args.files[0], args.files[1], args.threshold, args.top)


if __name__ == "__main__":
    sys.exit(main())
