#!/usr/bin/env python3
"""Compare a fresh benchmark JSON dump against a committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

CI machines and the machine the baseline was recorded on differ in
absolute speed, so raw ns/op comparisons are meaningless. What should be
stable is the *shape*: every benchmark's current/baseline ratio moves by
roughly the same machine-speed factor. We estimate that factor as the
median ratio across all shared benchmarks, normalize each ratio by it,
and flag a regression only when a benchmark is more than ``threshold``
slower than the fleet-wide trend (default 25%).

Bandwidth (bytes_per_second) is gated the same way for benchmarks that
report it on both sides: a benchmark whose normalized bandwidth drops
more than ``threshold`` below the bandwidth trend fails. Records with a
zero/missing bytes_per_second are warned about — they mean the bench
forgot SetBytesProcessed and is invisible to bandwidth gating.

Exit status: 0 clean, 1 regression found, 2 usage/parse error.
"""

import argparse
import json
import sys

# Kernel benches whose whole point is a bandwidth claim: the GEMM layer's
# micro-kernels and the weight-solve/beamform stages they feed. A record for
# one of these without SetBytesProcessed is a broken bench, not a warning —
# it would silently drop out of the bandwidth gate.
REQUIRED_BYTES = {
    "BM_Cgemm",
    "BM_Cherk",
    "BM_WeightsSolve",
    "BM_WeightsEasy",
    "BM_WeightsHard",
    "BM_Beamform",
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    records = {}
    zero_bytes = []
    for rec in doc.get("benchmarks", []):
        name, ns = rec.get("name"), rec.get("ns_per_op", 0)
        if name and ns > 0:
            records[name] = (ns, rec.get("bytes_per_second", 0) or 0)
            if records[name][1] <= 0:
                zero_bytes.append(name)
    if not records:
        print(f"compare_bench: no usable records in {path}", file=sys.stderr)
        sys.exit(2)
    if zero_bytes:
        print(f"WARNING: {len(zero_bytes)} record(s) in {path} report zero "
              f"bytes_per_second (missing SetBytesProcessed?): "
              f"{', '.join(sorted(zero_bytes))}")
        broken = sorted(set(zero_bytes) & REQUIRED_BYTES)
        if broken:
            print(f"compare_bench: {path}: bandwidth-gated bench(es) missing "
                  f"bytes_per_second: {', '.join(broken)}", file=sys.stderr)
            sys.exit(2)
    return records


def median(values):
    s = sorted(values)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed slowdown vs the median trend (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("compare_bench: baseline and current share no benchmarks",
              file=sys.stderr)
        sys.exit(2)
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"WARNING: {len(missing)} baseline benchmark(s) missing from "
              f"current run: {', '.join(missing)}")

    ratios = {name: cur[name][0] / base[name][0] for name in shared}
    trend = median(ratios.values())
    print(f"machine-speed trend (median current/baseline ratio): {trend:.3f}")
    print(f"{'benchmark':40s} {'base ns':>12s} {'cur ns':>12s} "
          f"{'ratio':>7s} {'vs trend':>9s}")

    failures = []
    for name in shared:
        rel = ratios[name] / trend
        flag = ""
        if rel > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            failures.append((name, rel))
        print(f"{name:40s} {base[name][0]:12.0f} {cur[name][0]:12.0f} "
              f"{ratios[name]:7.3f} {rel:9.3f}{flag}")

    # Bandwidth gate: only benchmarks that report bytes on both sides.
    banded = [n for n in shared if base[n][1] > 0 and cur[n][1] > 0]
    if banded:
        bw_ratios = {n: cur[n][1] / base[n][1] for n in banded}
        bw_trend = median(bw_ratios.values())
        print(f"\nbandwidth trend (median current/baseline B/s ratio): "
              f"{bw_trend:.3f}")
        for name in banded:
            rel = bw_ratios[name] / bw_trend
            if rel < 1.0 / (1.0 + args.threshold):
                failures.append((name, 1.0 / rel))
                print(f"{name:40s} bandwidth {rel - 1:+.1%} vs trend"
                      f"  << REGRESSION")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) more than "
              f"{args.threshold:.0%} slower than the machine trend:")
        for name, rel in failures:
            print(f"  {name}: {rel - 1:+.1%} vs trend")
        sys.exit(1)
    print(f"\nOK: all {len(shared)} shared benchmarks within "
          f"{args.threshold:.0%} of the machine trend")


if __name__ == "__main__":
    main()
