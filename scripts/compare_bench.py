#!/usr/bin/env python3
"""Compare a fresh benchmark JSON dump against a committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

CI machines and the machine the baseline was recorded on differ in
absolute speed, so raw ns/op comparisons are meaningless. What should be
stable is the *shape*: every benchmark's current/baseline ratio moves by
roughly the same machine-speed factor. We estimate that factor as the
median ratio across all shared benchmarks, normalize each ratio by it,
and flag a regression only when a benchmark is more than ``threshold``
slower than the fleet-wide trend (default 25%).

Exit status: 0 clean, 1 regression found, 2 usage/parse error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    records = {}
    for rec in doc.get("benchmarks", []):
        name, ns = rec.get("name"), rec.get("ns_per_op", 0)
        if name and ns > 0:
            records[name] = ns
    if not records:
        print(f"compare_bench: no usable records in {path}", file=sys.stderr)
        sys.exit(2)
    return records


def median(values):
    s = sorted(values)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed slowdown vs the median trend (default 0.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("compare_bench: baseline and current share no benchmarks",
              file=sys.stderr)
        sys.exit(2)
    missing = sorted(set(base) - set(cur))
    if missing:
        print(f"WARNING: {len(missing)} baseline benchmark(s) missing from "
              f"current run: {', '.join(missing)}")

    ratios = {name: cur[name] / base[name] for name in shared}
    trend = median(ratios.values())
    print(f"machine-speed trend (median current/baseline ratio): {trend:.3f}")
    print(f"{'benchmark':40s} {'base ns':>12s} {'cur ns':>12s} "
          f"{'ratio':>7s} {'vs trend':>9s}")

    failures = []
    for name in shared:
        rel = ratios[name] / trend
        flag = ""
        if rel > 1.0 + args.threshold:
            flag = "  << REGRESSION"
            failures.append((name, rel))
        print(f"{name:40s} {base[name]:12.0f} {cur[name]:12.0f} "
              f"{ratios[name]:7.3f} {rel:9.3f}{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) more than "
              f"{args.threshold:.0%} slower than the machine trend:")
        for name, rel in failures:
            print(f"  {name}: {rel - 1:+.1%} vs trend")
        sys.exit(1)
    print(f"\nOK: all {len(shared)} shared benchmarks within "
          f"{args.threshold:.0%} of the machine trend")


if __name__ == "__main__":
    main()
