// io_strategy_explorer: which I/O strategy should you deploy?
//
// Sweeps the simulator over machines (stripe factors, async vs sync reads)
// x node counts x the three pipeline organizations, and prints, for each
// machine/node-count cell, the throughput/latency of every strategy and
// which one wins — the decision the paper's evaluation supports.
//
//   ./build/examples/io_strategy_explorer [total_nodes...]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "sim/sim_runner.hpp"

using namespace pstap;

namespace {

struct StrategyResult {
  const char* name;
  double throughput;
  double latency;
};

std::vector<StrategyResult> evaluate(const stap::RadarParams& params, int total,
                                     const sim::MachineModel& machine) {
  using pipeline::IoStrategy;
  const auto embedded =
      pipeline::proportional_assignment(params, total, IoStrategy::kEmbedded, false);
  const auto separate = pipeline::proportional_assignment(
      params, total, IoStrategy::kSeparateTask, false, std::max(4, total / 6));
  // Task combination applied on top of the embedded design.
  std::vector<int> merged_nodes;
  for (std::size_t i = 0; i + 2 < embedded.tasks.size(); ++i)
    merged_nodes.push_back(embedded.tasks[i].nodes);
  merged_nodes.push_back(embedded.tasks[embedded.tasks.size() - 2].nodes +
                         embedded.tasks.back().nodes);
  const auto combined = pipeline::PipelineSpec::combined(params, merged_nodes);

  std::vector<StrategyResult> out;
  for (const auto& [name, spec] :
       std::initializer_list<std::pair<const char*, const pipeline::PipelineSpec*>>{
           {"embedded I/O (7 tasks)", &embedded},
           {"separate I/O task (8)", &separate},
           {"embedded + PC/CFAR merge", &combined}}) {
    const auto r = sim::SimRunner(*spec, machine).run();
    out.push_back({name, r.measured_throughput, r.measured_latency});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto params = stap::RadarParams{};
  std::vector<int> totals;
  for (int i = 1; i < argc; ++i) totals.push_back(std::atoi(argv[i]));
  if (totals.empty()) totals = {25, 50, 100};

  for (const auto& machine :
       {sim::paragon_like(16), sim::paragon_like(64), sim::sp_like(80)}) {
    TablePrinter table("machine: " + machine.name +
                       (machine.async_io ? "  (async reads)" : "  (sync-only reads)"));
    table.set_header({"nodes", "strategy", "throughput (CPI/s)", "latency (s)",
                      "best latency?"});
    for (const int total : totals) {
      const auto results = evaluate(params, total, machine);
      double best = 1e300;
      for (const auto& r : results) best = std::min(best, r.latency);
      for (const auto& r : results) {
        table.add_row({total, r.name, TableCell(r.throughput, 2),
                       TableCell(r.latency, 4), r.latency == best ? "  <== " : ""});
      }
      table.add_separator();
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "reading the tables: the separate I/O task never wins on latency (one\n"
      "extra pipeline term, paper eq. 4); merging PC+CFAR always helps\n"
      "latency without hurting throughput (paper §6); small stripe factors\n"
      "cap throughput at high node counts; sync-only reads (PIOFS) blunt\n"
      "the scaling that faster CPUs should buy.\n");
  return 0;
}
