// detection_replay: the pipeline's output side.
//
// Runs the parallel pipeline with detection logging enabled (reports are
// written back through the striped parallel file system, one block per
// CPI), then plays the role of the paper's "Target Display": reopens the
// log, replays it, and prints a per-target track summary by clustering
// reports across CPIs.
//
//   ./build/examples/detection_replay
#include <cstdio>
#include <filesystem>
#include <map>

#include "pipeline/thread_runner.hpp"
#include "stap/detection_log.hpp"

using namespace pstap;
namespace fsys = std::filesystem;

int main() {
  const auto params = stap::RadarParams::test_small();
  const fsys::path root =
      fsys::temp_directory_path() / ("pstap_replay_" + std::to_string(::getpid()));

  // --- Run the pipeline with logging on. ---
  pipeline::RunOptions options;
  options.cpis = 6;
  options.warmup = 1;
  options.seed = 11;
  options.fs_root = root;
  options.scene.cnr_db = 40.0;
  options.scene.targets = {
      {/*range=*/40, /*bin=*/8.0, /*angle=*/0.0, /*snr=*/20.0, /*rate=*/4.0},
      {/*range=*/90, /*bin=*/1.0, /*angle=*/-0.35, /*snr=*/25.0, /*rate=*/0.0},
  };
  options.detection_log = "reports";
  const auto spec = pipeline::PipelineSpec::embedded_io(params, {2, 1, 1, 1, 1, 1, 1});
  pipeline::ThreadRunner runner(spec, options);
  const auto result = runner.run();
  std::printf("pipeline produced %zu reports across %d CPIs; log written to "
              "'%s' on the striped file system\n\n",
              result.detections.size(), options.cpis,
              options.detection_log.c_str());

  // --- Replay the log as the display would. ---
  pfs::StripedFileSystem fs(root, options.fs_config);
  stap::DetectionLogReader reader(fs, options.detection_log);

  // Cluster reports by Doppler bin (coarse "track id") and list ranges per CPI.
  std::map<std::uint32_t, std::map<std::uint64_t, std::vector<std::uint32_t>>> tracks;
  stap::DetectionBlock block;
  std::uint64_t blocks = 0, total = 0;
  while (reader.next(block)) {
    ++blocks;
    for (const auto& d : block.detections) {
      tracks[d.bin][block.cpi].push_back(d.range);
      ++total;
    }
  }
  std::printf("replayed %llu blocks, %llu reports\n\n",
              static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(total));

  std::printf("tracks by Doppler bin (ranges per CPI):\n");
  for (const auto& [bin, per_cpi] : tracks) {
    std::printf("  bin %2u:", bin);
    for (const auto& [cpi, ranges] : per_cpi) {
      std::printf("  cpi%llu@", static_cast<unsigned long long>(cpi));
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        std::printf("%s%u", i ? "," : "", ranges[i]);
      }
    }
    std::printf("\n");
  }

  std::error_code ec;
  fsys::remove_all(root, ec);
  return total > 0 ? 0 : 1;
}
