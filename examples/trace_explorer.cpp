// Trace explorer: runs the functional pipeline with tracing on for the two
// I/O organizations the paper contrasts — embedded reads inside Doppler vs
// a separate parallel-read task — and writes one Chrome trace JSON per run
// (load them in https://ui.perfetto.dev or chrome://tracing). An ASCII
// timeline of each run and the process-wide metrics registry are printed
// so the comparison also works without leaving the terminal.
//
// Usage: trace_explorer [output-dir]     (default: current directory)
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/thread_runner.hpp"
#include "timeline.hpp"

using namespace pstap;
namespace fsys = std::filesystem;

namespace {

pipeline::RunOptions make_options(const fsys::path& root, const fsys::path& trace) {
  pipeline::RunOptions opt;
  opt.cpis = 4;
  opt.warmup = 1;
  opt.seed = 7;
  opt.fs_root = root;
  opt.trace_path = trace;
  opt.scene.cnr_db = 40.0;
  opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
  return opt;
}

void run_and_render(const char* title, const pipeline::PipelineSpec& spec,
                    pipeline::RunOptions opt) {
  std::printf("-- %s --\n", title);
  pipeline::ThreadRunner runner(spec, opt);
  const pipeline::RunResult result = runner.run();

  // The session just exported to opt.trace_path; the recorder still holds
  // the events, so the ASCII view renders the same timeline.
  bench::print_timeline(obs::TraceRecorder::global().snapshot());

  const auto& io = result.metrics.io;
  std::printf(
      "  trace: %s\n"
      "  io: queue depth p95 %.1f (max %.0f)   service p99 %.6f s   "
      "submit p99 %.6f s   %llu bytes serviced   %llu retries\n\n",
      opt.trace_path.string().c_str(), io.queue_depth.p95(),
      io.queue_depth.max(), io.service_time.p99(), io.submit_latency.p99(),
      static_cast<unsigned long long>(io.bytes_serviced),
      static_cast<unsigned long long>(io.retries));
}

}  // namespace

int main(int argc, char** argv) {
  const fsys::path out_dir = argc > 1 ? fsys::path(argv[1]) : fsys::current_path();
  const fsys::path root =
      fsys::temp_directory_path() / ("pstap_trace_" + std::to_string(::getpid()));
  const auto p = stap::RadarParams::test_small();

  std::printf("== Trace explorer: embedded vs separate I/O, traced ==\n\n");

  const auto embedded = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  run_and_render("embedded I/O (Doppler nodes read the files)", embedded,
                 make_options(root / "embedded", out_dir / "trace_embedded.json"));

  const auto separate =
      pipeline::PipelineSpec::separate_io(p, {1, 2, 1, 1, 1, 1, 1, 1});
  run_and_render("separate I/O task (dedicated parallel-read ranks)", separate,
                 make_options(root / "separate", out_dir / "trace_separate.json"));

  std::printf("-- process-wide metrics registry --\n%s\n",
              obs::Registry::global().report().c_str());

  std::error_code ec;
  fsys::remove_all(root, ec);
  return 0;
}
