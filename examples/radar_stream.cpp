// radar_stream: the paper's operating scenario end to end.
//
// A radar writes CPI data cubes into four files round-robin on a striped
// parallel file system; the parallel pipelined STAP system (here: the
// functional thread-rank backend with I/O embedded in the Doppler task)
// consumes them, trains its adaptive weights on each previous CPI, and
// emits detection reports. The scene contains a moving target — watch its
// range gate drift across CPIs in the report track.
//
//   ./build/examples/radar_stream
#include <cstdio>
#include <filesystem>
#include <map>

#include "pipeline/thread_runner.hpp"

using namespace pstap;
namespace fsys = std::filesystem;

int main() {
  const auto params = stap::RadarParams::test_small();

  // Scene: one slow inbound target (drifts 4 range gates per CPI) plus a
  // stationary one sitting inside the clutter-ridge Doppler region.
  pipeline::RunOptions options;
  options.cpis = 8;
  options.warmup = 1;
  options.seed = 7;
  options.scene.cnr_db = 40.0;
  // Keep targets outside the covariance training gates (0..31): a target
  // inside the training window at a fixed angle/Doppler would be adaptively
  // self-nulled — a real STAP effect worth knowing about.
  options.scene.targets = {
      {/*range=*/40, /*bin=*/8.0, /*angle=*/0.0, /*snr=*/20.0, /*rate=*/4.0},
      {/*range=*/90, /*bin=*/1.0, /*angle=*/-0.35, /*snr=*/25.0, /*rate=*/0.0},
  };
  options.fs_root = fsys::temp_directory_path() /
                    ("pstap_radar_stream_" + std::to_string(::getpid()));
  options.fs_config = pfs::paragon_pfs(4);  // 4 stripe directories, async reads

  // The pipeline: embedded I/O, 7 tasks, 8 thread-nodes.
  const auto spec = pipeline::PipelineSpec::embedded_io(params, {2, 1, 1, 1, 1, 1, 1});
  pipeline::ThreadRunner runner(spec, options);
  const pipeline::RunResult result = runner.run();

  // Print the per-CPI detection track. The radar writes 4 files round-robin,
  // so the moving target's range advances 4 gates per file rotation.
  std::printf("detections per CPI (moving target drifts +4 gates/CPI over the\n"
              "4-file rotation; CPI 0 uses conventional weights):\n\n");
  std::map<std::uint64_t, std::vector<stap::Detection>> per_cpi;
  for (const auto& d : result.detections) per_cpi[d.cpi].push_back(d);
  for (const auto& [cpi, dets] : per_cpi) {
    std::printf("CPI %llu:", static_cast<unsigned long long>(cpi));
    for (const auto& d : dets) {
      std::printf("  (r%u,b%u)", d.range, d.bin);
    }
    std::printf("\n");
  }

  std::printf("\nmeasured pipeline rates on this host (functional backend):\n");
  std::printf("  throughput %.1f CPI/s, latency %.4f s over %d timed CPIs\n",
              result.metrics.throughput(), result.metrics.latency(),
              result.timed_cpis);

  std::error_code ec;
  fsys::remove_all(options.fs_root, ec);
  return result.detections.empty() ? 1 : 0;
}
