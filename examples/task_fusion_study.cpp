// task_fusion_study: the paper's §6 algebra, numerically.
//
// For a chosen configuration this example prints every term of the
// task-combination analysis (paper eqs. 6-11): the split tasks' phase
// times T5, T6; the merged task's T_{5+6}; the work-pooling term (eq. 9),
// the communication saving (eq. 10); and verifies the conclusions
// T_{5+6} < T5 + T6 (eq. 11), latency_6 < latency_7 (eq. 12) and
// throughput_6 >= throughput_7 (eq. 14) on the simulator.
//
//   ./build/examples/task_fusion_study [total_nodes]
#include <cstdio>
#include <cstdlib>

#include "sim/sim_runner.hpp"

using namespace pstap;

int main(int argc, char** argv) {
  const int total = argc > 1 ? std::atoi(argv[1]) : 50;
  const auto params = stap::RadarParams{};
  const auto machine = sim::paragon_like(64);

  const auto split = pipeline::proportional_assignment(
      params, total, pipeline::IoStrategy::kEmbedded, false);
  std::vector<int> merged_nodes;
  for (std::size_t i = 0; i + 2 < split.tasks.size(); ++i)
    merged_nodes.push_back(split.tasks[i].nodes);
  const int p5 = split.tasks[split.tasks.size() - 2].nodes;
  const int p6 = split.tasks.back().nodes;
  merged_nodes.push_back(p5 + p6);
  const auto merged = pipeline::PipelineSpec::combined(params, merged_nodes);

  const sim::CostModel cm_split(split, machine);
  const sim::CostModel cm_merged(merged, machine);
  const auto c5 = cm_split.cost(split.tasks.size() - 2);   // pulse compression
  const auto c6 = cm_split.cost(split.tasks.size() - 1);   // CFAR
  const auto c56 = cm_merged.cost(merged.tasks.size() - 1);  // PC + CFAR

  std::printf("== task combination study: %d total nodes on %s ==\n\n", total,
              machine.name.c_str());
  std::printf("pulse compression: P5=%d   T5 = %.4fs (recv %.4f, comp %.4f, send %.4f)\n",
              p5, c5.total(), c5.receive, c5.compute, c5.send);
  std::printf("CFAR processing:   P6=%d   T6 = %.4fs (recv %.4f, comp %.4f, send %.4f)\n",
              p6, c6.total(), c6.receive, c6.compute, c6.send);
  std::printf("merged PC+CFAR:    P=%d    T5+6 = %.4fs (recv %.4f, comp %.4f, send %.4f)\n\n",
              p5 + p6, c56.total(), c56.receive, c56.compute, c56.send);

  // Paper eq. 9: pooling the nodes shrinks the combined work term.
  const double work_split = c5.compute + c6.compute;
  const double work_merged = c56.compute;
  std::printf("work term   (eq. 9):  comp5 + comp6 = %.4fs  vs  merged comp = %.4fs"
              "  (saving %.4fs)\n",
              work_split, work_merged, work_split - work_merged);
  // Paper eq. 10: the PC->CFAR transfer disappears.
  const double comm_split = c5.receive + c5.send + c6.receive + c6.send;
  const double comm_merged = c56.receive + c56.send;
  std::printf("comm term   (eq. 10): C5 + C6 = %.4fs  vs  C5+6 = %.4fs"
              "  (saving %.4fs)\n",
              comm_split, comm_merged, comm_split - comm_merged);
  std::printf("conclusion  (eq. 11): T5+6 = %.4fs %s T5 + T6 = %.4fs\n\n",
              c56.total(), c56.total() < c5.total() + c6.total() ? "<" : ">=",
              c5.total() + c6.total());

  // End-to-end verification on the simulator.
  const auto r7 = sim::SimRunner(split, machine).run();
  const auto r6 = sim::SimRunner(merged, machine).run();
  std::printf("simulated 7-task pipeline:  throughput %.3f CPI/s, latency %.4fs\n",
              r7.measured_throughput, r7.measured_latency);
  std::printf("simulated 6-task pipeline:  throughput %.3f CPI/s, latency %.4fs\n",
              r6.measured_throughput, r6.measured_latency);
  std::printf("latency improvement: %.1f%%   throughput change: %+.1f%%\n",
              100.0 * (r7.measured_latency - r6.measured_latency) /
                  r7.measured_latency,
              100.0 * (r6.measured_throughput - r7.measured_throughput) /
                  r7.measured_throughput);

  const bool ok = c56.total() < c5.total() + c6.total() &&
                  r6.measured_latency < r7.measured_latency &&
                  r6.measured_throughput >= 0.98 * r7.measured_throughput;
  std::printf("\npaper's §6 conclusions hold here: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
