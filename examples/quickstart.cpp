// Quickstart: the pstap library in ~60 lines.
//
// Builds a synthetic radar scene with two injected targets, runs the full
// PRI-staggered post-Doppler STAP chain on a single node (Doppler filter ->
// adaptive weights -> beamforming -> pulse compression -> CFAR), and
// prints the detection reports. The parallel pipeline and I/O machinery
// build on exactly these kernels — see the other examples.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/scene.hpp"
#include "stap/weights.hpp"

using namespace pstap::stap;

int main() {
  // 1. Radar parameters: a small configuration (4 channels, 17 pulses,
  //    128 range gates) that runs instantly anywhere.
  const RadarParams params = RadarParams::test_small();

  // 2. A scene: clutter ridge at 40 dB CNR plus two targets — one in the
  //    "easy" Doppler region, one buried near the clutter ridge ("hard").
  SceneConfig scene;
  scene.cnr_db = 40.0;
  scene.targets = {
      {/*range=*/40, /*doppler_bin=*/8.0, /*angle=*/0.0, /*snr_db=*/18.0},
      {/*range=*/90, /*doppler_bin=*/1.0, /*angle=*/-0.35, /*snr_db=*/25.0},
  };
  const SceneGenerator radar(params, scene, /*seed=*/42);

  // 3. Doppler-filter two consecutive CPIs: weights train on the previous
  //    CPI (the pipeline's temporal dependency), detection runs on the
  //    current one.
  const DopplerFilter doppler(params);
  const DopplerOutput previous = doppler.process(radar.generate(0));
  const DopplerOutput current = doppler.process(radar.generate(1));

  // 4. Adaptive weights: easy bins use `channels` DOF, hard bins (around
  //    the clutter ridge) use both PRI staggers = 2x DOF.
  const WeightComputer wc_easy(params, previous.easy_bin_ids, params.easy_dof());
  const WeightComputer wc_hard(params, previous.hard_bin_ids, params.hard_dof());
  const WeightSet w_easy = wc_easy.compute(previous.easy);
  const WeightSet w_hard = wc_hard.compute(previous.hard);

  // 5. Beamform, pulse-compress, CFAR-detect.
  const Beamformer beamformer(params);
  BeamArray y_easy = beamformer.apply(current.easy, w_easy);
  BeamArray y_hard = beamformer.apply(current.hard, w_hard);
  const PulseCompressor compressor(params);
  compressor.compress(y_easy);
  compressor.compress(y_hard);
  const CfarDetector cfar(params);
  auto detections = cfar.detect(y_easy, current.easy_bin_ids);
  const auto hard_hits = cfar.detect(y_hard, current.hard_bin_ids);
  detections.insert(detections.end(), hard_hits.begin(), hard_hits.end());

  // 6. Report.
  std::printf("injected targets: (range 40, bin 8) and (range 90, bin 1)\n");
  std::printf("%zu detections:\n", detections.size());
  for (const Detection& d : detections) {
    std::printf("  range %4u  doppler bin %3u  beam %u  power %9.2f  "
                "threshold %9.2f\n",
                d.range, d.bin, d.beam, static_cast<double>(d.power),
                static_cast<double>(d.threshold));
  }
  return detections.empty() ? 1 : 0;
}
