// Ablation: the value of asynchronous reads. Runs the same machine with
// the async read API enabled and disabled — isolating the one switch the
// paper blames for the SP's poor scaling (PIOFS had no async reads).
#include <cstdio>

#include "chart.hpp"
#include "experiment_config.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  std::printf("== Ablation: asynchronous vs synchronous reads ==\n\n");

  bool all_ok = true;
  for (const std::size_t sf : {16u, 64u}) {
    BarSeries thr{"throughput — paragon-like sf=" + std::to_string(sf) +
                      ", async vs sync reads",
                  "CPI/s",
                  {}};
    std::vector<double> gain;
    for (const int total : node_cases()) {
      auto machine = sim::paragon_like(sf);
      const double with_async =
          sim::SimRunner(embedded_spec(total), machine).run().measured_throughput;
      machine.async_io = false;
      const double without =
          sim::SimRunner(embedded_spec(total), machine).run().measured_throughput;
      thr.bars.emplace_back(std::to_string(total) + " async", with_async);
      thr.bars.emplace_back(std::to_string(total) + " sync", without);
      gain.push_back(with_async / without);
    }
    print_bars(thr);

    for (std::size_t i = 0; i < gain.size(); ++i) {
      all_ok &= shape_check("sf=" + std::to_string(sf) + " case " +
                                std::to_string(i + 1) + ": async >= sync",
                            gain[i] >= 0.999);
    }
    // Overlap matters most when I/O and compute are comparable — at the
    // largest node count compute shrinks, so the async gain grows.
    all_ok &= shape_check(
        "sf=" + std::to_string(sf) + ": async gain grows with node count",
        gain.back() >= gain.front() * 0.999);
  }

  std::printf("Async-I/O ablation shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
