// Reproduces Figure 5: bar charts of Table 1 (embedded I/O) — throughput
// and latency per node case, one chart pair per parallel file system.
#include <cstdio>

#include "chart.hpp"
#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Figure 5: embedded I/O — throughput and latency bar charts ==\n\n");

  bool all_ok = true;
  for (const auto& machine : paper_machines()) {
    BarSeries thr{"throughput — " + machine.name, "CPI/s", {}};
    BarSeries lat{"latency — " + machine.name, "s", {}};
    for (const int total : node_cases()) {
      const auto result = sim::SimRunner(embedded_spec(total), machine).run();
      const std::string label = std::to_string(total) + " nodes";
      thr.bars.emplace_back(label, result.measured_throughput);
      lat.bars.emplace_back(label, result.measured_latency);
    }
    print_bars(thr);
    print_bars(lat);

    all_ok &= shape_check(machine.name + ": throughput grows monotonically",
                          thr.bars[0].second < thr.bars[1].second &&
                              thr.bars[1].second <= thr.bars[2].second * 1.001);
    all_ok &= shape_check(machine.name + ": latency shrinks monotonically",
                          lat.bars[0].second > lat.bars[1].second &&
                              lat.bars[1].second > lat.bars[2].second);
  }

  std::printf("Figure 5 shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
