// Minimal perf-record JSON writer shared by the benchmark binaries.
//
// The benches dump their measurements as a flat, stable JSON document
// (BENCH_kernels.json / BENCH_pipeline.json) that is committed as the
// tracked perf baseline; scripts/compare_bench.py diffs a fresh run
// against it in CI. The format is deliberately tiny — one record per
// benchmark with name, iterations, ns/op and bytes/s — so the compare
// script never needs a JSON library.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace pstap::bench {

struct PerfRecord {
  std::string name;
  double iterations = 0;        ///< measured iterations
  double ns_per_op = 0;         ///< wall nanoseconds per iteration
  double bytes_per_second = 0;  ///< 0 when the bench tracks no byte rate
};

/// Write `records` to `path` as a {"benchmarks": [...]} document.
inline void write_perf_json(const std::string& path,
                            const std::vector<PerfRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("write_perf_json: cannot open " + path);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const PerfRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"iterations\": %.0f, "
                 "\"ns_per_op\": %.3f, \"bytes_per_second\": %.3f}%s\n",
                 r.name.c_str(), r.iterations, r.ns_per_op, r.bytes_per_second,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace pstap::bench
