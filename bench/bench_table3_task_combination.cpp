// Reproduces Table 3: pulse compression and CFAR combined into one task
// (6-task pipeline, embedded I/O), with the merged task receiving exactly
// the sum of the two original tasks' nodes — the paper's fair-comparison
// rule. Expected shape: latency improves in every cell versus Table 1;
// throughput is unchanged (the bottleneck task is elsewhere).
#include <cstdio>
#include <iostream>

#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf(
      "== Table 3: pulse compression and CFAR tasks combined (PC + CFAR) ==\n\n");

  bool all_ok = true;
  for (const auto& machine : paper_machines()) {
    for (std::size_t case_idx = 0; case_idx < node_cases().size(); ++case_idx) {
      const int total = node_cases()[case_idx];
      const auto spec = combined_spec(total);
      const auto result = sim::SimRunner(spec, machine).run();
      const auto split = sim::SimRunner(embedded_spec(total), machine).run();

      TablePrinter table(machine.name + " — case " + std::to_string(case_idx + 1) +
                         ": total number of nodes = " + std::to_string(total));
      table.set_header({"task", "nodes", "receive", "compute", "send", "total"});
      print_case_block(table, spec, result);
      table.print(std::cout);
      std::printf("\n");

      const std::string label =
          machine.name + " case " + std::to_string(case_idx + 1);
      all_ok &= shape_check(label + ": latency(6 tasks) < latency(7 tasks)",
                            result.measured_latency < split.measured_latency);
      all_ok &= shape_check(
          label + ": throughput unchanged by combining",
          result.measured_throughput > 0.98 * split.measured_throughput);
    }
  }

  std::printf("\nTable 3 shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
