// Ablation: throughput vs PFS stripe factor at the largest node case —
// locates the knee where the pipeline stops being I/O-bound (the
// mechanism behind the paper's §5.1 bottleneck discussion).
#include <cstdio>
#include <filesystem>

#include "chart.hpp"
#include "experiment_config.hpp"
#include "pfs/striped_file_system.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

namespace {

struct IoProbe {
  double queue_p95 = 0;
  double queue_max = 0;
  double service_p99 = 0;
  double submit_p99 = 0;
};

/// Drive the real IoEngine with one identical logical read pattern at the
/// given stripe factor and report its per-engine distributions. The chunk
/// count is fixed (the logical request), so a small stripe factor funnels
/// the same chunks through fewer queues — deeper at every submit sample.
IoProbe probe_engine(std::size_t stripe_factor) {
  namespace sfs = std::filesystem;
  const sfs::path root = sfs::temp_directory_path() /
                         ("pstap_stripe_sweep_sf" + std::to_string(stripe_factor));
  sfs::remove_all(root);
  pfs::PfsConfig cfg = pfs::paragon_pfs(stripe_factor);
  cfg.server_latency = 200e-6;  // make service visibly finite, as in a bench
  IoProbe probe;
  {
    pfs::StripedFileSystem fs(root, cfg);
    constexpr std::size_t kChunks = 64;
    std::vector<std::byte> data(kChunks * cfg.stripe_unit);
    fs.write_file("sweep", data);
    pfs::StripedFile file = fs.open("sweep");
    for (int rep = 0; rep < 4; ++rep) {
      file.read(0, data);
    }
    probe.queue_p95 = fs.engine().queue_depth().quantile(0.95);
    probe.queue_max = fs.engine().queue_depth().max();
    probe.service_p99 = fs.engine().service_time().p99();
    probe.submit_p99 = fs.engine().submit_latency().p99();
  }
  sfs::remove_all(root);
  return probe;
}

}  // namespace

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Ablation: stripe-factor sweep (embedded I/O, 100 nodes) ==\n\n");

  const auto spec = embedded_spec(100);
  BarSeries thr{"throughput vs stripe factor", "CPI/s", {}};
  std::vector<double> recv_phase;
  for (const std::size_t sf : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto result = sim::SimRunner(spec, sim::paragon_like(sf)).run();
    thr.bars.emplace_back("sf=" + std::to_string(sf), result.measured_throughput);
    const int dop = spec.find(pipeline::TaskKind::kDoppler);
    recv_phase.push_back(result.costs[static_cast<std::size_t>(dop)].receive);
  }
  print_bars(thr);

  TablePrinter table("Doppler receive phase (residual I/O wait) vs stripe factor");
  table.set_header({"stripe factor", "receive (s)"});
  const std::size_t sfs[] = {4, 8, 16, 32, 64, 128, 256};
  for (std::size_t i = 0; i < recv_phase.size(); ++i) {
    table.add_row({static_cast<int>(sfs[i]), TableCell(recv_phase[i], 4)});
  }
  std::puts(table.to_string().c_str());

  // Functional corroboration: the same logical read against the real
  // IoEngine at a small and a large stripe factor. The simulator above
  // predicts the bottleneck; these distributions show its mechanism —
  // fewer queues means deeper queues at every submit.
  const IoProbe sf4 = probe_engine(4);
  const IoProbe sf16 = probe_engine(16);
  TablePrinter io_table("Functional IoEngine distributions (64-chunk reads)");
  io_table.set_header({"stripe factor", "queue depth p95", "queue depth max",
                       "service p99 (s)", "submit p99 (s)"});
  io_table.add_row({4, TableCell(sf4.queue_p95, 2), TableCell(sf4.queue_max, 2),
                    TableCell(sf4.service_p99, 6), TableCell(sf4.submit_p99, 6)});
  io_table.add_row({16, TableCell(sf16.queue_p95, 2), TableCell(sf16.queue_max, 2),
                    TableCell(sf16.service_p99, 6), TableCell(sf16.submit_p99, 6)});
  std::puts(io_table.to_string().c_str());

  bool all_ok = true;
  all_ok &= shape_check("small stripe factor funnels: queue depth p95 sf=4 > sf=16",
                        sf4.queue_p95 > sf16.queue_p95);
  all_ok &= shape_check("small stripe factor funnels: queue depth max sf=4 > sf=16",
                        sf4.queue_max > sf16.queue_max);
  all_ok &= shape_check("per-chunk service time observed (p99 > 0)",
                        sf4.service_p99 > 0 && sf16.service_p99 > 0);
  all_ok &= shape_check("throughput monotonically non-decreasing in stripe factor",
                        std::is_sorted(thr.bars.begin(), thr.bars.end(),
                                       [](const auto& a, const auto& b) {
                                         return a.second < b.second * 0.999;
                                       }));
  all_ok &= shape_check("sf=4 is I/O bound (nonzero Doppler receive residual)",
                        recv_phase.front() > 1e-3);
  all_ok &= shape_check("sf=256 is compute bound (no receive residual)",
                        recv_phase.back() < 1e-6);
  all_ok &= shape_check("knee: sf=64 already within 2% of sf=256 throughput",
                        thr.bars[4].second > 0.98 * thr.bars.back().second);

  std::printf("Stripe-sweep shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
