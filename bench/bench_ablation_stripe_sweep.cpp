// Ablation: throughput vs PFS stripe factor at the largest node case —
// locates the knee where the pipeline stops being I/O-bound (the
// mechanism behind the paper's §5.1 bottleneck discussion).
#include <cstdio>

#include "chart.hpp"
#include "experiment_config.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  std::printf("== Ablation: stripe-factor sweep (embedded I/O, 100 nodes) ==\n\n");

  const auto spec = embedded_spec(100);
  BarSeries thr{"throughput vs stripe factor", "CPI/s", {}};
  std::vector<double> recv_phase;
  for (const std::size_t sf : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto result = sim::SimRunner(spec, sim::paragon_like(sf)).run();
    thr.bars.emplace_back("sf=" + std::to_string(sf), result.measured_throughput);
    const int dop = spec.find(pipeline::TaskKind::kDoppler);
    recv_phase.push_back(result.costs[static_cast<std::size_t>(dop)].receive);
  }
  print_bars(thr);

  TablePrinter table("Doppler receive phase (residual I/O wait) vs stripe factor");
  table.set_header({"stripe factor", "receive (s)"});
  const std::size_t sfs[] = {4, 8, 16, 32, 64, 128, 256};
  for (std::size_t i = 0; i < recv_phase.size(); ++i) {
    table.add_row({static_cast<int>(sfs[i]), TableCell(recv_phase[i], 4)});
  }
  std::puts(table.to_string().c_str());

  bool all_ok = true;
  all_ok &= shape_check("throughput monotonically non-decreasing in stripe factor",
                        std::is_sorted(thr.bars.begin(), thr.bars.end(),
                                       [](const auto& a, const auto& b) {
                                         return a.second < b.second * 0.999;
                                       }));
  all_ok &= shape_check("sf=4 is I/O bound (nonzero Doppler receive residual)",
                        recv_phase.front() > 1e-3);
  all_ok &= shape_check("sf=256 is compute bound (no receive residual)",
                        recv_phase.back() < 1e-6);
  all_ok &= shape_check("knee: sf=64 already within 2% of sf=256 throughput",
                        thr.bars[4].second > 0.98 * thr.bars.back().second);

  std::printf("Stripe-sweep shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
