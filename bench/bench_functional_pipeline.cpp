// Functional-backend benchmark: runs the real thread-rank pipeline (actual
// STAP math, actual striped files on local disk) for the three pipeline
// organizations at laptop scale and prints measured phase tables. This is
// a correctness-bearing demonstration, not a reproduction of the paper's
// numbers — those come from the sim-backed table benches.
// Each organization's steady-state rate is also dumped to
// BENCH_pipeline.json (override with PSTAP_BENCH_JSON) for the tracked
// perf baseline: ns_per_op is nanoseconds per CPI, bytes_per_second is
// CPI-file bytes consumed per second.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "perf_json.hpp"
#include "common/table.hpp"
#include "pipeline/thread_runner.hpp"

#include "obs/report.hpp"

using namespace pstap;
namespace fsys = std::filesystem;

namespace {

pipeline::RunOptions make_options(const fsys::path& root) {
  pipeline::RunOptions opt;
  opt.cpis = 4;
  opt.warmup = 1;
  opt.seed = 99;
  opt.fs_root = root;
  opt.scene.cnr_db = 40.0;
  opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
  return opt;
}

std::vector<bench::PerfRecord> g_records;

void record_perf(const char* name, const stap::RadarParams& p,
                 const pipeline::RunResult& result) {
  bench::PerfRecord rec;
  rec.name = name;
  rec.iterations = static_cast<double>(result.timed_cpis);
  const double cpi_per_s = result.metrics.throughput();
  if (cpi_per_s > 0) {
    rec.ns_per_op = 1e9 / cpi_per_s;
    rec.bytes_per_second = static_cast<double>(p.cube_bytes()) * cpi_per_s;
  }
  g_records.push_back(rec);
}

void report(const char* title, const pipeline::PipelineSpec& spec,
            const pipeline::RunResult& result) {
  TablePrinter table(title);
  table.set_header({"task", "nodes", "receive", "compute", "send", "total"});
  for (const auto& t : result.metrics.tasks) {
    table.add_row({pipeline::task_name(t.kind), t.nodes, TableCell(t.receive, 5),
                   TableCell(t.compute, 5), TableCell(t.send, 5),
                   TableCell(t.total(), 5)});
  }
  table.print(std::cout);
  std::printf("  throughput %.2f CPI/s   latency(eq) %.5f s   detections %zu"
              "   total nodes %d\n\n",
              result.metrics.throughput(), result.metrics.latency(),
              result.detections.size(), spec.total_nodes());
}

}  // namespace

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Functional pipeline (thread ranks, real files, real math) ==\n\n");
  const auto p = stap::RadarParams::test_small();
  const fsys::path root =
      fsys::temp_directory_path() / ("pstap_bench_fn_" + std::to_string(::getpid()));

  const auto embedded = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  const auto separate =
      pipeline::PipelineSpec::separate_io(p, {1, 2, 1, 1, 1, 1, 1, 1});
  const auto combined = pipeline::PipelineSpec::combined(p, {2, 1, 1, 1, 1, 2});

  {
    pipeline::ThreadRunner runner(embedded, make_options(root / "a"));
    const auto result = runner.run();
    report("embedded I/O (7 tasks, 8 nodes)", embedded, result);
    record_perf("Pipeline_EmbeddedIo", p, result);
  }
  {
    pipeline::ThreadRunner runner(separate, make_options(root / "b"));
    const auto result = runner.run();
    report("separate I/O task (8 tasks, 9 nodes)", separate, result);
    record_perf("Pipeline_SeparateIo", p, result);
  }
  {
    pipeline::ThreadRunner runner(combined, make_options(root / "c"));
    const auto result = runner.run();
    report("combined PC+CFAR (6 tasks, 8 nodes)", combined, result);
    record_perf("Pipeline_CombinedPcCfar", p, result);
  }

  const char* json_path = std::getenv("PSTAP_BENCH_JSON");
  bench::write_perf_json(json_path != nullptr ? json_path : "BENCH_pipeline.json",
                         g_records);

  std::error_code ec;
  fsys::remove_all(root, ec);
  return 0;
}
