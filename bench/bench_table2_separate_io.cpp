// Reproduces Table 2: performance with the I/O implemented as a separate
// parallel-read task prepended to the pipeline (8 tasks). Compared with
// Table 1 (embedded I/O), the paper finds approximately equal throughput
// but strictly worse latency — the latency equation gains one term
// (paper eq. 4 vs eq. 2).
#include <cstdio>
#include <iostream>

#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Table 2: I/O implemented as a separate task ==\n\n");

  bool all_ok = true;
  for (const auto& machine : paper_machines()) {
    std::vector<double> throughput, latency;
    std::vector<double> embedded_throughput, embedded_latency;
    for (std::size_t case_idx = 0; case_idx < node_cases().size(); ++case_idx) {
      const int total = node_cases()[case_idx];
      const auto spec = separate_spec(total);
      const auto result = sim::SimRunner(spec, machine).run();
      throughput.push_back(result.measured_throughput);
      latency.push_back(result.measured_latency);

      const auto embedded = sim::SimRunner(embedded_spec(total), machine).run();
      embedded_throughput.push_back(embedded.measured_throughput);
      embedded_latency.push_back(embedded.measured_latency);

      TablePrinter table(machine.name + " — case " + std::to_string(case_idx + 1) +
                         ": total number of nodes = " +
                         std::to_string(spec.total_nodes()) + " (incl. " +
                         std::to_string(spec.tasks.front().nodes) + " I/O nodes)");
      table.set_header({"task", "nodes", "receive", "compute", "send", "total"});
      print_case_block(table, spec, result);
      table.print(std::cout);
      std::printf("\n");
    }

    for (std::size_t i = 0; i < node_cases().size(); ++i) {
      const std::string c = "case " + std::to_string(i + 1);
      all_ok &= shape_check(
          machine.name + " " + c + ": throughput ~= embedded design",
          throughput[i] > 0.85 * embedded_throughput[i] &&
              throughput[i] < 1.15 * embedded_throughput[i]);
      all_ok &= shape_check(machine.name + " " + c + ": latency worse than embedded",
                            latency[i] > embedded_latency[i]);
    }
  }

  std::printf("\nTable 2 shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
