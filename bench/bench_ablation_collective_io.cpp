// Ablation: direct strided reads vs two-phase collective I/O on the real
// striped file system.
//
// With pulse-major CPI files (ADC streaming order), every node's range
// slab is pulses*channels small strided segments; per-request overhead at
// the I/O servers dominates. The two-phase collective read takes one large
// conforming read per node and redistributes over the interconnect —
// the classic result this group published around the same era.
#include <cstdio>
#include <filesystem>

#include "chart.hpp"
#include "common/wall_clock.hpp"
#include "experiment_config.hpp"
#include "mp/world.hpp"
#include "pipeline/collective_read.hpp"
#include "pipeline/partition.hpp"
#include "stap/scene.hpp"

using namespace pstap;
namespace fsys = std::filesystem;

namespace {

stap::RadarParams io_params() {
  stap::RadarParams p;
  p.channels = 8;
  p.pulses = 64;
  p.ranges = 2048;  // cube = 8 MB
  p.training_ranges = 64;
  p.hard_halfwidth = 3;
  return p;
}

double timed_run(pfs::StripedFileSystem& fs, const stap::RadarParams& p, int nranks,
                 bool collective, int repeats) {
  mp::World world(nranks);
  Seconds total = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    Timer t;
    world.run([&](mp::Comm& comm) {
      pfs::StripedFile file = fs.open("pm");
      if (collective) {
        auto cube = pipeline::collective_read_slab(comm, file, p);
        (void)cube;
      } else {
        const pipeline::BlockPartition part(p.ranges,
                                            static_cast<std::size_t>(comm.size()));
        const std::size_t r0 = part.begin(static_cast<std::size_t>(comm.rank()));
        const std::size_t r1 = part.end(static_cast<std::size_t>(comm.rank()));
        auto cube = stap::read_cpi_slab(file, p, r0, r1, stap::FileLayout::kPulseMajor);
        (void)cube;
      }
    });
    total += t.elapsed();
  }
  return total / repeats;
}

}  // namespace

int main() {
  std::printf("== Ablation: strided direct reads vs two-phase collective I/O ==\n");
  std::printf("(pulse-major 8 MB CPI file, 8 I/O servers with per-chunk latency)\n\n");

  const auto p = io_params();
  const fsys::path root =
      fsys::temp_directory_path() / ("pstap_bench_cio_" + std::to_string(::getpid()));
  pfs::PfsConfig cfg = pfs::paragon_pfs(8);
  cfg.stripe_unit = 16 * KiB;
  cfg.server_bandwidth = 256.0 * MiB;  // fast pipes, slow per-request setup:
  cfg.server_latency = 0.2e-3;         // the small-request regime
  pfs::StripedFileSystem fs(root, cfg);

  stap::SceneGenerator gen(p, stap::SceneConfig{}, 1);
  stap::write_cpi(fs, "pm", gen.generate(0), stap::FileLayout::kPulseMajor);

  bool all_ok = true;
  bench::BarSeries series{"slab read time, 4 reading nodes", "s", {}};
  const double direct = timed_run(fs, p, 4, /*collective=*/false, 3);
  const double twophase = timed_run(fs, p, 4, /*collective=*/true, 3);
  series.bars.emplace_back("direct strided", direct);
  series.bars.emplace_back("two-phase", twophase);
  bench::print_bars(series);

  std::printf("speedup from collective I/O: %.2fx\n\n", direct / twophase);
  all_ok &= bench::shape_check("two-phase collective beats direct strided reads",
                               twophase < direct);

  std::error_code ec;
  fsys::remove_all(root, ec);
  std::printf("Collective-I/O ablation shape checks: %s\n",
              all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
