// Ablation: straggler I/O servers. Striping is static, so a read that
// touches a slow stripe directory cannot route around it — the conforming
// read finishes when the slowest server does. Sweeps the slowdown of one
// straggler server at the paper's largest node case, for both Paragon
// stripe factors: the small-stripe system is already I/O bound, so the
// straggler's hit lands directly on pipeline throughput, while the large
// stripe factor hides mild stragglers behind compute/communication overlap.
#include <cstdio>
#include <map>

#include "chart.hpp"
#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Ablation: one straggler I/O server (100 nodes) ==\n\n");

  const int total = 100;
  const std::vector<double> slowdowns{1.0, 2.0, 4.0, 8.0};

  bool all_ok = true;
  std::map<std::size_t, std::vector<double>> sweep;  // sf -> throughput/slowdown
  for (const std::size_t sf : {16u, 64u}) {
    BarSeries thr{"throughput — paragon-like sf=" + std::to_string(sf) +
                      ", 1 straggler server at various slowdowns",
                  "CPI/s",
                  {}};
    std::vector<double> t;
    for (const double slowdown : slowdowns) {
      auto machine = sim::paragon_like(sf);
      machine.straggler_servers = slowdown > 1.0 ? 1 : 0;
      machine.straggler_slowdown = slowdown;
      const auto result = sim::SimRunner(embedded_spec(total), machine).run();
      t.push_back(result.measured_throughput);
      char label[32];
      std::snprintf(label, sizeof label, "%gx", slowdown);
      thr.bars.emplace_back(label, result.measured_throughput);
    }
    print_bars(thr);
    sweep[sf] = t;

    // Monotone: a slower straggler never helps.
    for (std::size_t i = 1; i < t.size(); ++i) {
      all_ok &= shape_check("sf=" + std::to_string(sf) + ": slowdown " +
                                std::to_string(static_cast<int>(slowdowns[i])) +
                                "x does not beat " +
                                std::to_string(static_cast<int>(slowdowns[i - 1])) + "x",
                            t[i] <= t[i - 1] * 1.001);
    }
    // An 8x straggler must visibly gate the pipeline.
    all_ok &= shape_check("sf=" + std::to_string(sf) + ": 8x straggler costs throughput",
                          t.back() < t.front() * 0.999);
  }

  // Relative damage comparison at 4x: sf=16 (I/O bound) suffers at least
  // as much as sf=64 (overlapped). Reuses the sweep's runs (slowdown index
  // 0 is clean, index 2 is 4x) so each config lands in the RunReport
  // document exactly once.
  auto degradation = [&](std::size_t sf) { return sweep[sf][2] / sweep[sf][0]; };
  const double deg16 = degradation(16);
  const double deg64 = degradation(64);
  std::printf("retained throughput at 4x straggler: sf=16 %.3f, sf=64 %.3f\n\n",
              deg16, deg64);
  all_ok &= shape_check("4x straggler hurts sf=16 at least as much as sf=64",
                        deg16 <= deg64 + 1e-9);

  std::printf("Straggler ablation shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
