// Ablation: straggler I/O servers. Striping is static, so a read that
// touches a slow stripe directory cannot route around it — the conforming
// read finishes when the slowest server does. Sweeps the slowdown of one
// straggler server at the paper's largest node case, for both Paragon
// stripe factors: the small-stripe system is already I/O bound, so the
// straggler's hit lands directly on pipeline throughput, while the large
// stripe factor hides mild stragglers behind compute/communication overlap.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "chart.hpp"
#include "experiment_config.hpp"

#include "common/rng.hpp"
#include "common/wall_clock.hpp"
#include "obs/report.hpp"
#include "pfs/striped_file_system.hpp"
#include "pipeline/thread_runner.hpp"

using namespace pstap;
using namespace pstap::bench;

namespace {

// ------------------------------------------------------------------------
// Real-pfs straggler defense: one 5x-slow server, scheduler x hedging grid.

struct IoModeResult {
  double wall = 0;  ///< seconds for the measured read rounds
  std::uint64_t hedges = 0, wins = 0, stolen = 0, expired = 0;
};

pfs::PfsConfig bench_pfs(bool sched, bool hedge, double slowdown) {
  pfs::PfsConfig cfg;
  cfg.name = "straggler-bench";
  cfg.stripe_factor = 4;
  cfg.stripe_unit = 16 * KiB;
  cfg.replicas = 2;
  cfg.server_bandwidth = 64.0 * MiB;
  cfg.server_latency = 1e-3;
  cfg.straggler_servers = slowdown > 1.0 ? 1 : 0;
  cfg.straggler_slowdown = slowdown;
  cfg.straggler_sched = sched;
  cfg.hedged_reads = hedge;
  // Tightened for bench cadence: qualify windows fast so the straggler's
  // own (sparse) sample stream still produces a steal verdict.
  cfg.deadline_min_samples = 3;
  cfg.sched_window = 100e-3;
  cfg.deadline_floor = 2e-3;
  return cfg;
}

/// Time repeated whole-file reads against a mounted config; exports the
/// engine's counters and histograms as one RunReport entry per mode.
IoModeResult run_io_mode(const std::string& label, const pfs::PfsConfig& cfg) {
  namespace fsys = std::filesystem;
  const fsys::path root = fsys::temp_directory_path() /
                          ("pstap_bench_straggler_" +
                           std::to_string(::getpid()) + "_" + label);
  std::error_code ec;
  fsys::remove_all(root, ec);

  constexpr std::size_t kUnits = 64;  // 16 per server, 1 MiB total
  std::vector<std::byte> data(kUnits * 16 * KiB);
  Rng rng(4711);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xFF);

  IoModeResult out;
  {
    pfs::StripedFileSystem pfs(root, cfg);
    pfs.write_file("cube", data);
    pfs::StripedFile f = pfs.open("cube");
    std::vector<std::byte> buf(data.size());
    constexpr int kWarmup = 4, kRounds = 10;
    for (int i = 0; i < kWarmup; ++i) f.read(0, buf);
    const Seconds t0 = monotonic_now();
    for (int i = 0; i < kRounds; ++i) f.read(0, buf);
    out.wall = monotonic_now() - t0;
    out.hedges = pfs.engine().hedges_launched();
    out.wins = pfs.engine().hedge_wins();
    out.stolen = pfs.engine().chunks_stolen();
    out.expired = pfs.engine().deadline_expired();

    if (obs::report_enabled()) {
      obs::RunReport r;
      r.label = label;
      r.kind = "functional";
      r.config.machine = "pfs-microbench";
      r.config.io_strategy = "embedded";
      r.config.stripe_factor = cfg.stripe_factor;
      r.config.straggler_servers = static_cast<int>(cfg.straggler_servers);
      r.config.straggler_slowdown = cfg.straggler_slowdown;
      r.totals.wall_s = out.wall;
      r.totals.throughput_cpis_per_s = kRounds / out.wall;
      auto& eng = pfs.engine();
      r.io.present = true;
      r.io.queue_depth = eng.queue_depth();
      r.io.service_time = eng.service_time();
      r.io.submit_latency = eng.submit_latency();
      for (std::size_t s = 0; s < eng.servers(); ++s) {
        r.io.server_service_time.push_back(eng.server_service_time(s));
      }
      r.io.bytes_serviced = eng.bytes_serviced();
      r.io.corrupt_chunks = eng.corrupt_chunks();
      r.io.quarantined_servers = eng.quarantined_servers();
      r.io.hedges_launched = eng.hedges_launched();
      r.io.hedge_wins = eng.hedge_wins();
      r.io.hedge_cancels = eng.hedge_cancels();
      r.io.chunks_stolen = eng.chunks_stolen();
      r.io.deadline_expired = eng.deadline_expired();
      r.io.breaker_reopened = eng.breaker_reopened();
      obs::ReportCollector::global().add(std::move(r));
    }
  }
  fsys::remove_all(root, ec);
  return out;
}

// ------------------------------------------------------------------------
// Result integrity: the defenses may only move bytes around, never change
// what the pipeline computes.

using DetKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;

std::set<DetKey> detection_keys(const std::vector<stap::Detection>& dets) {
  std::set<DetKey> keys;
  for (const auto& d : dets) keys.insert({d.cpi, d.bin, d.beam, d.range});
  return keys;
}

std::set<DetKey> run_pipeline_mode(const std::string& label, bool sched,
                                   bool hedge, double slowdown) {
  namespace fsys = std::filesystem;
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1, 1});
  pipeline::RunOptions opt;
  opt.cpis = 4;
  opt.warmup = 1;
  opt.seed = 77;
  opt.fs_root = fsys::temp_directory_path() /
                ("pstap_bench_straggler_pipe_" + std::to_string(::getpid())) /
                label;
  opt.scene.cnr_db = 40.0;
  opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
  opt.report_label = label;
  opt.fs_config = pfs::paragon_pfs(4);
  opt.fs_config.replicas = 2;
  opt.fs_config.server_latency = 2e-4;
  opt.fs_config.straggler_servers = slowdown > 1.0 ? 1 : 0;
  opt.fs_config.straggler_slowdown = slowdown;
  opt.fs_config.straggler_sched = sched;
  opt.fs_config.hedged_reads = hedge;
  opt.fs_config.deadline_min_samples = 3;
  opt.fs_config.deadline_floor = 1e-3;
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();
  std::error_code ec;
  fsys::remove_all(opt.fs_root.parent_path(), ec);
  return detection_keys(result.detections);
}

}  // namespace

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Ablation: one straggler I/O server (100 nodes) ==\n\n");

  const int total = 100;
  const std::vector<double> slowdowns{1.0, 2.0, 4.0, 8.0};

  bool all_ok = true;
  std::map<std::size_t, std::vector<double>> sweep;  // sf -> throughput/slowdown
  for (const std::size_t sf : {16u, 64u}) {
    BarSeries thr{"throughput — paragon-like sf=" + std::to_string(sf) +
                      ", 1 straggler server at various slowdowns",
                  "CPI/s",
                  {}};
    std::vector<double> t;
    for (const double slowdown : slowdowns) {
      auto machine = sim::paragon_like(sf);
      machine.straggler_servers = slowdown > 1.0 ? 1 : 0;
      machine.straggler_slowdown = slowdown;
      const auto result = sim::SimRunner(embedded_spec(total), machine).run();
      t.push_back(result.measured_throughput);
      char label[32];
      std::snprintf(label, sizeof label, "%gx", slowdown);
      thr.bars.emplace_back(label, result.measured_throughput);
    }
    print_bars(thr);
    sweep[sf] = t;

    // Monotone: a slower straggler never helps.
    for (std::size_t i = 1; i < t.size(); ++i) {
      all_ok &= shape_check("sf=" + std::to_string(sf) + ": slowdown " +
                                std::to_string(static_cast<int>(slowdowns[i])) +
                                "x does not beat " +
                                std::to_string(static_cast<int>(slowdowns[i - 1])) + "x",
                            t[i] <= t[i - 1] * 1.001);
    }
    // An 8x straggler must visibly gate the pipeline.
    all_ok &= shape_check("sf=" + std::to_string(sf) + ": 8x straggler costs throughput",
                          t.back() < t.front() * 0.999);
  }

  // Relative damage comparison at 4x: sf=16 (I/O bound) suffers at least
  // as much as sf=64 (overlapped). Reuses the sweep's runs (slowdown index
  // 0 is clean, index 2 is 4x) so each config lands in the RunReport
  // document exactly once.
  auto degradation = [&](std::size_t sf) { return sweep[sf][2] / sweep[sf][0]; };
  const double deg16 = degradation(16);
  const double deg64 = degradation(64);
  std::printf("retained throughput at 4x straggler: sf=16 %.3f, sf=64 %.3f\n\n",
              deg16, deg64);
  all_ok &= shape_check("4x straggler hurts sf=16 at least as much as sf=64",
                        deg16 <= deg64 + 1e-9);

  // ---------------------------------------------------------------------
  // Real pfs, one 5x straggler server: scheduler x hedging ablation grid.
  // Clean (no straggler) baselines are taken per request shape (per-chunk
  // vs coalesced list-I/O) so the recovery ratio isolates the straggler
  // defense from the list-I/O win.
  std::printf("\n== Straggler defense on the real pfs (1 of 4 servers 5x slow) ==\n\n");
  const double kSlow = 5.0;
  const IoModeResult clean_off = run_io_mode("straggler-io-clean-off",
                                             bench_pfs(false, false, 1.0));
  const IoModeResult clean_sched = run_io_mode("straggler-io-clean-sched",
                                               bench_pfs(true, true, 1.0));
  const IoModeResult off = run_io_mode("straggler-io-off",
                                       bench_pfs(false, false, kSlow));
  const IoModeResult off_hedge = run_io_mode("straggler-io-off-hedgeknob",
                                             bench_pfs(false, true, kSlow));
  const IoModeResult sched = run_io_mode("straggler-io-sched",
                                         bench_pfs(true, false, kSlow));
  const IoModeResult hedged = run_io_mode("straggler-io-sched-hedged",
                                          bench_pfs(true, true, kSlow));

  BarSeries grid{"wall time of 10 whole-file reads, 5x straggler — "
                 "scheduler x hedging",
                 "seconds",
                 {{"sched OFF hedge OFF", off.wall},
                  {"sched OFF hedge ON (inert)", off_hedge.wall},
                  {"sched ON hedge OFF", sched.wall},
                  {"sched ON hedge ON", hedged.wall}}};
  print_bars(grid);
  std::printf("clean baselines: per-chunk %.3fs, coalesced %.3fs\n", clean_off.wall,
              clean_sched.wall);
  std::printf("defense counters (sched+hedge): hedges=%llu wins=%llu stolen=%llu "
              "deadline_expired=%llu\n\n",
              static_cast<unsigned long long>(hedged.hedges),
              static_cast<unsigned long long>(hedged.wins),
              static_cast<unsigned long long>(hedged.stolen),
              static_cast<unsigned long long>(hedged.expired));

  // Scheduler OFF reproduces the baseline: no hedges, no steals, and the
  // hedged_reads knob alone (scheduler off) is inert.
  all_ok &= shape_check("sched OFF: no hedges/steals fire",
                        off.hedges == 0 && off.stolen == 0 &&
                            off_hedge.hedges == 0 && off_hedge.stolen == 0);
  // The straggler must actually hurt the undefended configuration.
  all_ok &= shape_check("5x straggler slows the undefended read path",
                        off.wall > clean_off.wall * 1.5);
  // Defense engaged: the scheduler observed expirations and acted.
  all_ok &= shape_check("sched+hedge: defense engaged (hedges or steals > 0)",
                        hedged.hedges + hedged.stolen > 0);
  // The tentpole claim: scheduler+hedging recovers at least 2x of the
  // straggler-induced excess time over the matching clean baseline.
  const double excess_off = off.wall - clean_off.wall;
  const double excess_hedged = hedged.wall - clean_sched.wall;
  std::printf("straggler-induced excess: undefended %.3fs, sched+hedge %.3fs\n",
              excess_off, excess_hedged);
  all_ok &= shape_check("sched+hedging recovers >= 2x of the straggler excess",
                        excess_hedged > 0
                            ? excess_off >= 2.0 * excess_hedged
                            : true);
  all_ok &= shape_check("defended straggler run beats undefended",
                        hedged.wall < off.wall);

  // ---------------------------------------------------------------------
  // Result integrity: detections are bit-identical with the defense on and
  // off — adaptive I/O may change timing, never results.
  std::printf("\n== Detection identity under the straggler (pipeline runs) ==\n\n");
  const auto det_clean = run_pipeline_mode("straggler-pipe-clean", false, false, 1.0);
  const auto det_off = run_pipeline_mode("straggler-pipe-off", false, false, kSlow);
  const auto det_hedged = run_pipeline_mode("straggler-pipe-hedged", true, true, kSlow);
  std::printf("detections: clean %zu, straggler sched-off %zu, sched+hedge %zu\n",
              det_clean.size(), det_off.size(), det_hedged.size());
  all_ok &= shape_check("detections identical: clean vs straggler sched OFF",
                        det_clean == det_off);
  all_ok &= shape_check("detections identical: clean vs straggler sched+hedge",
                        det_clean == det_hedged);

  std::printf("\nStraggler ablation shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
