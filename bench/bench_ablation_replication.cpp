// Ablation: round-robin task replication (the "Round Robin Scheduling"
// boxes of the paper's Figs. 3-4). Successive CPIs alternate across R
// instances of a task, multiplying its sustainable rate by R — a
// throughput tool that leaves per-CPI latency untouched, and the natural
// lever when one compute task bottlenecks the pipeline but its data-
// parallel decomposition has stopped scaling.
#include <cstdio>
#include <iostream>

#include "chart.hpp"
#include "experiment_config.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  std::printf("== Ablation: round-robin replication of the bottleneck task ==\n\n");

  const auto machine = sim::paragon_like(64);
  // Starve hard beamforming so it bottlenecks the 50-node pipeline.
  auto spec = embedded_spec(50);
  spec.tasks[static_cast<std::size_t>(
                 spec.find(pipeline::TaskKind::kBeamformHard))].nodes = 1;

  TablePrinter table("hard-BF replicas sweep (hard BF starved to 1 node)");
  table.set_header({"replicas", "throughput (CPI/s)", "latency (s)",
                    "hard-BF utilization"});
  std::vector<double> throughput, latency;
  for (int r = 1; r <= 4; ++r) {
    sim::SimOptions opt;
    opt.replicas[pipeline::TaskKind::kBeamformHard] = r;
    const auto result = sim::SimRunner(spec, machine, opt).run();
    throughput.push_back(result.measured_throughput);
    latency.push_back(result.measured_latency);
    const auto bh = static_cast<std::size_t>(
        spec.find(pipeline::TaskKind::kBeamformHard));
    table.add_row({r, TableCell(result.measured_throughput, 3),
                   TableCell(result.measured_latency, 4),
                   TableCell(result.utilization[bh], 2)});
  }
  table.print(std::cout);
  std::printf("\n");

  bool all_ok = true;
  all_ok &= shape_check("2 replicas raise throughput by >30%",
                        throughput[1] > 1.3 * throughput[0]);
  all_ok &= shape_check("returns diminish once another task binds",
                        throughput[3] < 2.0 * throughput[1]);
  for (std::size_t i = 1; i < latency.size(); ++i) {
    all_ok &= shape_check("latency unchanged at " + std::to_string(i + 1) +
                              " replicas",
                          std::abs(latency[i] - latency[0]) < 0.05 * latency[0]);
  }

  std::printf("Replication ablation shape checks: %s\n",
              all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
