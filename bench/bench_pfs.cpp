// google-benchmark measurements of the real (functional) striped file
// system: read bandwidth vs stripe factor under a per-server throttle,
// and the async-prefetch vs synchronous read contrast — the hardware-free
// analogue of the paper's PFS/PIOFS measurements.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.hpp"
#include "pfs/striped_file_system.hpp"

namespace {

using namespace pstap;
namespace fsys = std::filesystem;

struct TempMount {
  explicit TempMount(pfs::PfsConfig cfg) {
    static std::atomic<int> counter{0};
    root = fsys::temp_directory_path() /
           ("pstap_bench_pfs_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs = std::make_unique<pfs::StripedFileSystem>(root, std::move(cfg));
  }
  ~TempMount() {
    fs.reset();
    std::error_code ec;
    fsys::remove_all(root, ec);
  }
  fsys::path root;
  std::unique_ptr<pfs::StripedFileSystem> fs;
};

std::vector<std::byte> payload(std::size_t n) {
  Rng rng(1);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64());
  return v;
}

/// Throttled read: stripe factor sweep. Each server limited to 32 MiB/s so
/// striping parallelism, not the host disk, dominates.
void BM_ThrottledReadVsStripeFactor(benchmark::State& state) {
  pfs::PfsConfig cfg = pfs::paragon_pfs(static_cast<std::size_t>(state.range(0)));
  cfg.stripe_unit = 64 * KiB;
  cfg.server_bandwidth = 32.0 * MiB;
  TempMount mount(std::move(cfg));
  const std::size_t bytes = 2 * MiB;
  mount.fs->write_file("cpi", payload(bytes));
  pfs::StripedFile f = mount.fs->open("cpi");
  std::vector<std::byte> buf(bytes);
  for (auto _ : state) {
    f.read(0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ThrottledReadVsStripeFactor)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Unthrottled read bandwidth (host-disk bound) for reference.
void BM_UnthrottledRead(benchmark::State& state) {
  TempMount mount(pfs::paragon_pfs(8));
  const std::size_t bytes = 4 * MiB;
  mount.fs->write_file("cpi", payload(bytes));
  pfs::StripedFile f = mount.fs->open("cpi");
  std::vector<std::byte> buf(bytes);
  for (auto _ : state) {
    f.read(0, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_UnthrottledRead)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Async prefetch vs synchronous reads with simulated compute between
/// CPIs: async hides the throttled read behind the "compute".
void BM_PrefetchOverlap(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  pfs::PfsConfig cfg = pfs::paragon_pfs(4);
  cfg.server_bandwidth = 64.0 * MiB;
  cfg.supports_async = async;
  TempMount mount(std::move(cfg));
  const std::size_t bytes = 1 * MiB;
  mount.fs->write_file("cpi", payload(bytes));
  pfs::StripedFile f = mount.fs->open("cpi");
  std::array<std::vector<std::byte>, 2> bufs{std::vector<std::byte>(bytes),
                                             std::vector<std::byte>(bytes)};
  // Fake compute: ~the read service time, so overlap can halve the loop.
  const auto compute = [] {
    volatile double x = 0;
    for (int i = 0; i < 400000; ++i) x = x + 1.0;
    benchmark::DoNotOptimize(x);
  };
  int k = 0;
  pfs::IoRequest pending = f.iread(0, bufs[0]);
  for (auto _ : state) {
    pending.wait();
    const int cur = k & 1;
    pending = f.iread(0, bufs[1 - cur]);  // prefetch next (inline when sync)
    compute();
    benchmark::DoNotOptimize(bufs[static_cast<std::size_t>(cur)].data());
    ++k;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PrefetchOverlap)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"async"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
