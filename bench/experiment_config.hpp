// Shared configuration of the reproduced experiments.
//
// The paper's evaluation grid: three parallel file systems (Paragon PFS
// with stripe factors 16 and 64, SP PIOFS with 80 slices) x three node
// cases (each doubling the previous). Node assignments follow the
// workload-proportional scheme; the separate-I/O design adds dedicated
// read nodes, and the task-combination design gives the merged PC+CFAR
// task exactly the sum of the split tasks' nodes (the paper's "fair
// comparison" rule). EXPERIMENTS.md documents the reconstructed values.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "pipeline/task_spec.hpp"
#include "sim/machine.hpp"
#include "sim/sim_runner.hpp"

namespace pstap::bench {

/// The paper's radar parameters (reconstructed; see DESIGN.md §3).
inline stap::RadarParams paper_params() { return stap::RadarParams{}; }

/// Node cases: "three cases ... each doubles the number of nodes".
inline const std::vector<int>& node_cases() {
  static const std::vector<int> cases{25, 50, 100};
  return cases;
}

/// Dedicated I/O-task nodes per case (separate-I/O design): enough link
/// bandwidth to read + forward one CPI per pipeline period.
inline int io_nodes_for_case(int total) { return std::max(4, total / 6); }

/// The three file systems of the evaluation.
inline std::vector<sim::MachineModel> paper_machines() {
  return {sim::paragon_like(16), sim::paragon_like(64), sim::sp_like(80)};
}

/// Embedded-I/O spec for a node case.
inline pipeline::PipelineSpec embedded_spec(int total) {
  return pipeline::proportional_assignment(paper_params(), total,
                                           pipeline::IoStrategy::kEmbedded, false);
}

/// Separate-I/O spec: same compute assignment plus read nodes.
inline pipeline::PipelineSpec separate_spec(int total) {
  return pipeline::proportional_assignment(paper_params(), total,
                                           pipeline::IoStrategy::kSeparateTask, false,
                                           io_nodes_for_case(total));
}

/// Task-combination spec: embedded assignment with the last two tasks
/// merged at the sum of their node counts (total conserved).
inline pipeline::PipelineSpec combined_spec(int total) {
  const auto split = embedded_spec(total);
  std::vector<int> nodes;
  for (std::size_t i = 0; i + 2 < split.tasks.size(); ++i) {
    nodes.push_back(split.tasks[i].nodes);
  }
  nodes.push_back(split.tasks[split.tasks.size() - 2].nodes +
                  split.tasks.back().nodes);
  return pipeline::PipelineSpec::combined(paper_params(), nodes);
}

/// Render one simulated configuration as a paper-style table block.
inline void print_case_block(TablePrinter& table, const pipeline::PipelineSpec& spec,
                             const sim::SimResult& result) {
  for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
    const auto& c = result.costs[i];
    table.add_row({pipeline::task_name(c.kind), c.nodes, TableCell(c.receive, 4),
                   TableCell(c.compute, 4), TableCell(c.send, 4),
                   TableCell(c.total(), 4)});
  }
  table.add_row({"throughput (CPI/s)", "", "", "", "",
                 TableCell(result.measured_throughput, 3)});
  table.add_row({"latency (s)", "", "", "", "", TableCell(result.measured_latency, 4)});
  table.add_separator();
}

/// Uniform shape-check reporting: prints PASS/FAIL and returns ok.
inline bool shape_check(const std::string& label, bool ok) {
  std::printf("[shape-check] %-68s %s\n", label.c_str(), ok ? "PASS" : "FAIL");
  return ok;
}

}  // namespace pstap::bench
