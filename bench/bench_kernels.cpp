// google-benchmark microbenches of every STAP kernel — the real flop rates
// behind the workload model's W_i terms. Results are also dumped as
// BENCH_kernels.json (override the path with PSTAP_BENCH_JSON) for the
// tracked perf baseline; see bench/perf_json.hpp.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "perf_json.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fft/fft.hpp"
#include "linalg/cgemm.hpp"
#include "linalg/cmatrix.hpp"
#include "mp/world.hpp"
#include "obs/metrics.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/scene.hpp"
#include "stap/weights.hpp"

namespace {

using namespace pstap;
using namespace pstap::stap;

RadarParams bench_params() {
  RadarParams p = RadarParams::test_small();
  p.ranges = 256;
  return p;
}

void BM_FftPow2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  Rng rng(1);
  std::vector<cfloat> data(n);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform(data, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(cfloat)));
}
BENCHMARK(BM_FftPow2)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FftBatchPow2(benchmark::State& state) {
  const std::size_t n = 256;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  fft::BatchScratch scratch;
  Rng rng(8);
  std::vector<cfloat> data(n * count);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform_batch(data, count, fft::Direction::kForward, scratch);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count * sizeof(cfloat)));
}
BENCHMARK(BM_FftBatchPow2)->Arg(16)->Arg(64);

void BM_FftBatchBluestein(benchmark::State& state) {
  const std::size_t n = 127;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  fft::BatchScratch scratch;
  Rng rng(9);
  std::vector<cfloat> data(n * count);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform_batch(data, count, fft::Direction::kForward, scratch);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count * sizeof(cfloat)));
}
BENCHMARK(BM_FftBatchBluestein)->Arg(16)->Arg(64);

void BM_FftBluestein(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  Rng rng(2);
  std::vector<cfloat> data(n);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform(data, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(cfloat)));
}
BENCHMARK(BM_FftBluestein)->Arg(127)->Arg(1000);

void BM_DopplerFilter(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 1);
  const DataCube cube = gen.generate(0);
  DopplerFilter filter(p);
  for (auto _ : state) {
    auto out = filter.process(cube);
    benchmark::DoNotOptimize(out.easy.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube.samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_DopplerFilter);

void BM_WeightsEasy(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 2);
  DopplerFilter filter(p);
  const auto out = filter.process(gen.generate(0));
  WeightComputer wc(p, out.easy_bin_ids, p.easy_dof());
  for (auto _ : state) {
    auto ws = wc.compute(out.easy);
    benchmark::DoNotOptimize(ws.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.easy.samples()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(out.easy.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_WeightsEasy);

void BM_WeightsHard(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 3);
  DopplerFilter filter(p);
  const auto out = filter.process(gen.generate(0));
  WeightComputer wc(p, out.hard_bin_ids, p.hard_dof());
  for (auto _ : state) {
    auto ws = wc.compute(out.hard);
    benchmark::DoNotOptimize(ws.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.hard.samples()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(out.hard.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_WeightsHard);

void BM_Beamform(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 4);
  DopplerFilter filter(p);
  const auto out = filter.process(gen.generate(0));
  WeightComputer wc(p, out.hard_bin_ids, p.hard_dof());
  const auto ws = wc.compute(out.hard);
  Beamformer bf(p);
  for (auto _ : state) {
    auto y = bf.apply(out.hard, ws);
    benchmark::DoNotOptimize(y.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.hard.samples()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(out.hard.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_Beamform);

// Raw GEMM micro-kernel at the beamform shape: 4 weight rows (beams) x 32
// DOFs applied across 256 range gates per call.
void BM_Cgemm(benchmark::State& state) {
  const std::size_t m = 4, k = 32, n = 256;
  Rng rng(11);
  std::vector<cfloat> a(m * k), b(k * n), c(m * n);
  for (auto& v : a) v = rng.complex_normal();
  for (auto& v : b) v = rng.complex_normal();
  linalg::CgemmScratch scratch;
  for (auto _ : state) {
    linalg::cgemm(true, m, k, n, a.data(), k, b.data(), n, c.data(), n,
                  scratch);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * k * n));
  // A + B streamed in, C read-modify-written.
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>((m * k + k * n + 2 * m * n) * sizeof(cfloat)));
}
BENCHMARK(BM_Cgemm);

// Covariance-forming Hermitian rank-k update at the hard-bin shape: 32 DOFs
// over 128 training gates, range series strided a full 256-gate row apart.
void BM_Cherk(benchmark::State& state) {
  const std::size_t dof = 32, t = 128, lds = 256;
  Rng rng(12);
  std::vector<cfloat> s(dof * lds);
  for (auto& v : s) v = rng.complex_normal();
  linalg::CMatrix<double> r(dof, dof);
  const double alpha = 1.0 / static_cast<double>(t);
  for (auto _ : state) {
    r.set_zero();
    linalg::cherk_lower(r, s.data(), lds, t, alpha);
    benchmark::DoNotOptimize(r.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dof * (dof + 1) / 2 * t));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(dof * t * sizeof(cfloat) +
                                dof * (dof + 1) / 2 * sizeof(cdouble)));
}
BENCHMARK(BM_Cherk);

// One full adaptive-weight solve for a single hard Doppler bin: cherk
// covariance, diagonal loading, Cholesky factor, and a per-beam solve +
// MVDR normalization. This is the per-bin unit of BM_WeightsHard without
// the scene/Doppler setup around it.
void BM_WeightsSolve(benchmark::State& state) {
  const RadarParams p = bench_params();
  Rng rng(13);
  BinArray spectra(1, p.hard_dof(), p.ranges);
  for (auto& v : spectra.flat()) v = rng.complex_normal();
  WeightComputer wc(p, {0}, p.hard_dof());
  for (auto _ : state) {
    auto ws = wc.compute(spectra);
    benchmark::DoNotOptimize(ws.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spectra.samples()));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(spectra.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_WeightsSolve);

void BM_PulseCompression(benchmark::State& state) {
  const RadarParams p = bench_params();
  PulseCompressor pc(p);
  Rng rng(5);
  BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();
  for (auto _ : state) {
    pc.compress(beams);
    benchmark::DoNotOptimize(beams.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_PulseCompression);

void BM_Cfar(benchmark::State& state) {
  const RadarParams p = bench_params();
  CfarDetector cfar(p);
  Rng rng(6);
  BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();
  const auto ids = [&] {
    std::vector<std::size_t> v(p.doppler_bins());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    return v;
  }();
  for (auto _ : state) {
    auto dets = cfar.detect(beams, ids);
    benchmark::DoNotOptimize(dets.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_Cfar);

void BM_SceneGeneration(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneConfig cfg;
  cfg.clutter_patches = 16;
  SceneGenerator gen(p, cfg, 7);
  std::uint64_t cpi = 0;
  for (auto _ : state) {
    auto cube = gen.generate(cpi++);
    benchmark::DoNotOptimize(cube.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.cube_samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.cube_bytes()));
}
BENCHMARK(BM_SceneGeneration);

// Strong scaling of the pinned mp::World backend: a fixed pile of batch FFT
// work (the pipeline's dominant kernel) split evenly across N pinned rank
// threads. On a machine with >= N cores the time should drop ~linearly with
// N; the "pinned_ranks" counter records how many ranks the OS actually let
// us pin. Includes World::run() thread spawn/join, which is the real
// per-CPI cost the pipeline pays.
void BM_WorldScaling(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  constexpr std::size_t kN = 256;
  constexpr std::size_t kCount = 16;
  constexpr std::size_t kTotalBatches = 64;  // divisible by 1, 2, 4
  mp::WorldOptions opts;
  opts.pin_threads = true;
  mp::World world(ranks, opts);
  std::vector<fft::FftPlan> plans;
  plans.reserve(static_cast<std::size_t>(ranks));
  std::vector<fft::BatchScratch> scratch(static_cast<std::size_t>(ranks));
  std::vector<std::vector<cfloat>> data(static_cast<std::size_t>(ranks));
  Rng rng(10);
  for (int r = 0; r < ranks; ++r) {
    plans.emplace_back(kN);
    data[static_cast<std::size_t>(r)].resize(kN * kCount);
    for (auto& v : data[static_cast<std::size_t>(r)]) v = rng.complex_normal();
  }
  const std::size_t per_rank = kTotalBatches / static_cast<std::size_t>(ranks);
  for (auto _ : state) {
    world.run([&](mp::Comm& comm) {
      const auto r = static_cast<std::size_t>(comm.rank());
      for (std::size_t b = 0; b < per_rank; ++b) {
        plans[r].transform_batch(data[r], kCount, fft::Direction::kForward,
                                 scratch[r]);
        benchmark::DoNotOptimize(data[r].data());
      }
    });
  }
  state.counters["pinned_ranks"] =
      static_cast<double>(world.pinned_ranks());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTotalBatches * kN * kCount));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kTotalBatches * kN * kCount * sizeof(cfloat)));
}
BENCHMARK(BM_WorldScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Console reporter that also captures each run as a PerfRecord for the
/// JSON baseline dump.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(std::vector<pstap::bench::PerfRecord>* out)
      : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      pstap::bench::PerfRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<double>(run.iterations);
      rec.ns_per_op = run.GetAdjustedRealTime();  // default time unit is ns
      const auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) rec.bytes_per_second = it->second;
      out_->push_back(rec);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<pstap::bench::PerfRecord>* out_;
};

}  // namespace

int main(int argc, char** argv) {
  // Resolve the SIMD backend (honouring PSTAP_SIMD) and set FTZ/DAZ before
  // any kernel runs — the benches must measure the same float environment
  // the pipeline's rank threads run in. The printed line is parsed by the
  // CI perf-smoke job to assert dispatch actually engaged.
  pstap::simd::init_thread();
  const auto backend = pstap::simd::active();
  std::printf("PSTAP SIMD backend: %s (simd.backend=%lld)\n",
              pstap::simd::backend_name(backend),
              static_cast<long long>(
                  pstap::obs::Registry::global().gauge("simd.backend").value()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::vector<pstap::bench::PerfRecord> records;
  JsonCapturingReporter reporter(&records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("PSTAP_BENCH_JSON");
  pstap::bench::write_perf_json(path != nullptr ? path : "BENCH_kernels.json",
                                records);
  benchmark::Shutdown();
  return 0;
}
