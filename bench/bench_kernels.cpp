// google-benchmark microbenches of every STAP kernel — the real flop rates
// behind the workload model's W_i terms. Results are also dumped as
// BENCH_kernels.json (override the path with PSTAP_BENCH_JSON) for the
// tracked perf baseline; see bench/perf_json.hpp.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "perf_json.hpp"
#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/scene.hpp"
#include "stap/weights.hpp"

namespace {

using namespace pstap;
using namespace pstap::stap;

RadarParams bench_params() {
  RadarParams p = RadarParams::test_small();
  p.ranges = 256;
  return p;
}

void BM_FftPow2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  Rng rng(1);
  std::vector<cfloat> data(n);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform(data, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(cfloat)));
}
BENCHMARK(BM_FftPow2)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FftBatchPow2(benchmark::State& state) {
  const std::size_t n = 256;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  fft::BatchScratch scratch;
  Rng rng(8);
  std::vector<cfloat> data(n * count);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform_batch(data, count, fft::Direction::kForward, scratch);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count * sizeof(cfloat)));
}
BENCHMARK(BM_FftBatchPow2)->Arg(16)->Arg(64);

void BM_FftBatchBluestein(benchmark::State& state) {
  const std::size_t n = 127;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  fft::BatchScratch scratch;
  Rng rng(9);
  std::vector<cfloat> data(n * count);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform_batch(data, count, fft::Direction::kForward, scratch);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * count * sizeof(cfloat)));
}
BENCHMARK(BM_FftBatchBluestein)->Arg(16)->Arg(64);

void BM_FftBluestein(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  Rng rng(2);
  std::vector<cfloat> data(n);
  for (auto& v : data) v = rng.complex_normal();
  for (auto _ : state) {
    plan.transform(data, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_FftBluestein)->Arg(127)->Arg(1000);

void BM_DopplerFilter(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 1);
  const DataCube cube = gen.generate(0);
  DopplerFilter filter(p);
  for (auto _ : state) {
    auto out = filter.process(cube);
    benchmark::DoNotOptimize(out.easy.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube.samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cube.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_DopplerFilter);

void BM_WeightsEasy(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 2);
  DopplerFilter filter(p);
  const auto out = filter.process(gen.generate(0));
  WeightComputer wc(p, out.easy_bin_ids, p.easy_dof());
  for (auto _ : state) {
    auto ws = wc.compute(out.easy);
    benchmark::DoNotOptimize(ws.flat().data());
  }
}
BENCHMARK(BM_WeightsEasy);

void BM_WeightsHard(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 3);
  DopplerFilter filter(p);
  const auto out = filter.process(gen.generate(0));
  WeightComputer wc(p, out.hard_bin_ids, p.hard_dof());
  for (auto _ : state) {
    auto ws = wc.compute(out.hard);
    benchmark::DoNotOptimize(ws.flat().data());
  }
}
BENCHMARK(BM_WeightsHard);

void BM_Beamform(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneGenerator gen(p, SceneConfig{}, 4);
  DopplerFilter filter(p);
  const auto out = filter.process(gen.generate(0));
  WeightComputer wc(p, out.hard_bin_ids, p.hard_dof());
  const auto ws = wc.compute(out.hard);
  Beamformer bf(p);
  for (auto _ : state) {
    auto y = bf.apply(out.hard, ws);
    benchmark::DoNotOptimize(y.flat().data());
  }
}
BENCHMARK(BM_Beamform);

void BM_PulseCompression(benchmark::State& state) {
  const RadarParams p = bench_params();
  PulseCompressor pc(p);
  Rng rng(5);
  BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();
  for (auto _ : state) {
    pc.compress(beams);
    benchmark::DoNotOptimize(beams.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_PulseCompression);

void BM_Cfar(benchmark::State& state) {
  const RadarParams p = bench_params();
  CfarDetector cfar(p);
  Rng rng(6);
  BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();
  const auto ids = [&] {
    std::vector<std::size_t> v(p.doppler_bins());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    return v;
  }();
  for (auto _ : state) {
    auto dets = cfar.detect(beams, ids);
    benchmark::DoNotOptimize(dets.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(beams.samples() * sizeof(cfloat)));
}
BENCHMARK(BM_Cfar);

void BM_SceneGeneration(benchmark::State& state) {
  const RadarParams p = bench_params();
  SceneConfig cfg;
  cfg.clutter_patches = 16;
  SceneGenerator gen(p, cfg, 7);
  std::uint64_t cpi = 0;
  for (auto _ : state) {
    auto cube = gen.generate(cpi++);
    benchmark::DoNotOptimize(cube.flat().data());
  }
}
BENCHMARK(BM_SceneGeneration);

/// Console reporter that also captures each run as a PerfRecord for the
/// JSON baseline dump.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(std::vector<pstap::bench::PerfRecord>* out)
      : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      pstap::bench::PerfRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<double>(run.iterations);
      rec.ns_per_op = run.GetAdjustedRealTime();  // default time unit is ns
      const auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) rec.bytes_per_second = it->second;
      out_->push_back(rec);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<pstap::bench::PerfRecord>* out_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::vector<pstap::bench::PerfRecord> records;
  JsonCapturingReporter reporter(&records);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("PSTAP_BENCH_JSON");
  pstap::bench::write_perf_json(path != nullptr ? path : "BENCH_kernels.json",
                                records);
  benchmark::Shutdown();
  return 0;
}
