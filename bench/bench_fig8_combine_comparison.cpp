// Reproduces Figure 8: performance comparison of the pipeline system with
// (6 tasks) and without (7 tasks) task combining — throughput and latency
// side by side per node case, one panel per file system.
//
// Shape targets: latency improves in every cell when the last two tasks
// are combined; throughput is unchanged.
#include <cstdio>

#include "chart.hpp"
#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Figure 8: with vs without task combining ==\n\n");

  bool all_ok = true;
  for (const auto& machine : paper_machines()) {
    BarSeries thr{"throughput — " + machine.name + " (7 vs 6 tasks)", "CPI/s", {}};
    BarSeries lat{"latency — " + machine.name + " (7 vs 6 tasks)", "s", {}};
    for (const int total : node_cases()) {
      const auto seven = sim::SimRunner(embedded_spec(total), machine).run();
      const auto six = sim::SimRunner(combined_spec(total), machine).run();
      const std::string base = std::to_string(total);
      thr.bars.emplace_back(base + " n/7t", seven.measured_throughput);
      thr.bars.emplace_back(base + " n/6t", six.measured_throughput);
      lat.bars.emplace_back(base + " n/7t", seven.measured_latency);
      lat.bars.emplace_back(base + " n/6t", six.measured_latency);

      const std::string label = machine.name + " @" + base + " nodes";
      all_ok &= shape_check(label + ": 6-task latency < 7-task latency",
                            six.measured_latency < seven.measured_latency);
      all_ok &= shape_check(label + ": throughput preserved",
                            six.measured_throughput > 0.98 * seven.measured_throughput);
    }
    print_bars(thr);
    print_bars(lat);
  }

  std::printf("Figure 8 shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
