// Ablation: availability cost of node crashes under supervision, embedded
// vs separate I/O. Crashes are injected at a given MTBF; each one stalls
// the struck stage for detection (the heartbeat bound) + recovery (respawn
// or failover) + the re-executed work, via SimOptions::CrashEvent. The
// embedded organization (strategy A) loses its Doppler/IO stage — the
// pipeline head — while the separate organization (strategy B) loses the
// dedicated read task and fails over. Sweeping MTBF shows throughput and
// latency degrading gracefully (proportionally to the crash rate) rather
// than collapsing, which is the supervisor's design goal; the functional
// counterpart of these stalls is measured by tests/test_supervisor.cpp.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "chart.hpp"
#include "experiment_config.hpp"
#include "obs/trace.hpp"
#include "timeline.hpp"

using namespace pstap;
using namespace pstap::bench;

namespace {

struct Degraded {
  double throughput;
  double latency;
};

// Run `spec` with crashes on `task` every `mtbf` seconds of simulated
// steady-state time (0 = fault-free).
Degraded run_with_mtbf(const pipeline::PipelineSpec& spec,
                       pipeline::TaskKind task, Seconds mtbf,
                       Seconds detection, Seconds recovery) {
  sim::SimOptions opt;
  opt.cpis = 256;
  opt.warmup = 32;

  const auto machine = sim::paragon_like(64);
  const auto clean = sim::SimRunner(spec, machine, opt).run();
  if (mtbf <= 0) return {clean.measured_throughput, clean.measured_latency};

  Seconds occupancy = 0;
  for (const auto& c : clean.costs) {
    if (c.kind == task) occupancy = c.occupancy;
  }
  // One crash every `stride` CPIs approximates the MTBF at the pipeline's
  // sustained rate; the re-executed work is the struck stage's occupancy
  // (worst case: death at the send phase, the whole CPI redone).
  const double period = 1.0 / clean.measured_throughput;
  const int stride = std::max(1, static_cast<int>(std::llround(mtbf / period)));
  for (int cpi = opt.warmup + stride / 2; cpi < opt.cpis; cpi += stride) {
    opt.crashes.push_back({task, cpi, detection, recovery, occupancy});
  }
  const auto result = sim::SimRunner(spec, machine, opt).run();
  return {result.measured_throughput, result.measured_latency};
}

}  // namespace

int main() {
  std::printf("== Ablation: crash MTBF vs supervised throughput/latency (100 nodes) ==\n\n");

  const int total = 100;
  const Seconds detection = 0.010;  // heartbeat bound
  const Seconds recovery = 0.050;   // respawn / failover latency
  const std::vector<Seconds> mtbfs{0, 60, 30, 10, 5, 2};

  bool all_ok = true;
  struct Strategy {
    const char* name;
    pipeline::PipelineSpec spec;
    pipeline::TaskKind victim;
  };
  const std::vector<Strategy> strategies{
      {"A embedded I/O, Doppler crashes", embedded_spec(total),
       pipeline::TaskKind::kDoppler},
      {"B separate I/O, read-task crashes", separate_spec(total),
       pipeline::TaskKind::kParallelRead},
  };

  for (const Strategy& s : strategies) {
    BarSeries thr{std::string("throughput — strategy ") + s.name, "CPI/s", {}};
    BarSeries lat{std::string("latency — strategy ") + s.name, "s", {}};
    std::vector<double> t, l;
    for (const Seconds mtbf : mtbfs) {
      const Degraded d = run_with_mtbf(s.spec, s.victim, mtbf, detection, recovery);
      t.push_back(d.throughput);
      l.push_back(d.latency);
      char label[32];
      if (mtbf <= 0) {
        std::snprintf(label, sizeof label, "fault-free");
      } else {
        std::snprintf(label, sizeof label, "MTBF %gs", mtbf);
      }
      thr.bars.emplace_back(label, d.throughput);
      lat.bars.emplace_back(label, d.latency);
    }
    print_bars(thr);
    print_bars(lat);

    const std::string tag(s.name, 1);  // "A" / "B"
    for (std::size_t i = 1; i < t.size(); ++i) {
      all_ok &= shape_check(
          tag + ": more crashes never raise throughput (step " + std::to_string(i) + ")",
          t[i] <= t[i - 1] * 1.001);
      all_ok &= shape_check(
          tag + ": more crashes never lower latency (step " + std::to_string(i) + ")",
          l[i] >= l[i - 1] * 0.999);
    }
    all_ok &= shape_check(tag + ": MTBF 2 s visibly costs throughput",
                          t.back() < t.front() * 0.999);
    // Graceful degradation: even one crash per 2 s keeps the pipeline
    // above half of its fault-free rate — stalls are bounded per crash,
    // they do not cascade.
    all_ok &= shape_check(tag + ": MTBF 2 s retains > 50% of fault-free rate",
                          t.back() > 0.5 * t.front());
  }

  // Gantt view of one failover: a short separate-I/O run where the read
  // task crashes at CPI 3 — its stretched span is the gap, and the
  // downstream stages visibly bunch up and catch back to cadence.
  std::printf("-- one read-task crash at CPI 3 (separate I/O, MTBF sweep above) --\n");
  {
    const auto trace_file =
        std::filesystem::temp_directory_path() / "pstap_failover_trace.json";
    obs::TraceSession session(trace_file);
    sim::SimOptions opt;
    opt.cpis = 8;
    opt.warmup = 0;
    opt.crashes.push_back({pipeline::TaskKind::kParallelRead, 3, detection,
                           recovery, /*lost_work=*/0.1});
    (void)sim::SimRunner(separate_spec(total), sim::paragon_like(64), opt).run();
    print_timeline(obs::TraceRecorder::global().snapshot());
    std::error_code ec;
    std::filesystem::remove(trace_file, ec);
  }
  std::printf("\nFailover ablation shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
