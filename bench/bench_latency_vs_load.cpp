// Ablation: latency and throughput vs offered load (radar rate).
//
// The paper measures the saturated pipeline (radar delivering CPIs as fast
// as the pipeline drains them). This bench sweeps the source period around
// the pipeline's capacity: below saturation the throughput tracks the
// radar rate and the latency stays at its queueing-free floor; at and
// beyond capacity the throughput pins to 1/max_i T_i.
#include <cstdio>
#include <iostream>

#include "chart.hpp"
#include "experiment_config.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  std::printf("== Ablation: latency/throughput vs offered load (sf=64, 50 nodes) ==\n\n");

  const auto spec = embedded_spec(50);
  const auto machine = sim::paragon_like(64);

  // Capacity = bottleneck occupancy.
  const auto base = sim::SimRunner(spec, machine).run();
  double t_max = 0;
  for (const auto& c : base.costs) t_max = std::max(t_max, c.occupancy);

  TablePrinter table("offered load sweep (capacity period = " +
                     std::to_string(t_max) + " s)");
  table.set_header({"load (frac of capacity)", "throughput (CPI/s)", "latency (s)"});
  std::vector<double> latencies, throughputs, loads{0.25, 0.5, 0.75, 0.9, 1.0};
  for (const double load : loads) {
    sim::SimOptions opt;
    opt.input_period = t_max / load;
    const auto r = sim::SimRunner(spec, machine, opt).run();
    throughputs.push_back(r.measured_throughput);
    latencies.push_back(r.measured_latency);
    table.add_row({TableCell(load, 2), TableCell(r.measured_throughput, 3),
                   TableCell(r.measured_latency, 4)});
  }
  table.print(std::cout);
  std::printf("\n");

  bool all_ok = true;
  for (std::size_t i = 0; i + 1 < loads.size(); ++i) {
    all_ok &= shape_check(
        "throughput tracks offered load at " + std::to_string(loads[i]),
        std::abs(throughputs[i] - loads[i] / t_max) < 0.02 * loads[i] / t_max);
  }
  // Latency stays within a few percent of its floor below saturation.
  for (std::size_t i = 1; i < loads.size(); ++i) {
    all_ok &= shape_check("latency flat below/at saturation (load " +
                              std::to_string(loads[i]) + ")",
                          latencies[i] < 1.05 * latencies[0]);
  }

  std::printf("Load-sweep shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
