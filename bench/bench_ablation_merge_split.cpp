// Ablation of the paper's §6 analysis: is merging PC+CFAR better than ANY
// way of splitting the same node budget between separate PC and CFAR
// tasks? Eq. 8-11 say yes: the merged task avoids the PC->CFAR transfer
// and uses the pooled nodes for both phases. We sweep every split of the
// pooled budget and compare latencies.
#include <cstdio>

#include "experiment_config.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  std::printf("== Ablation: merged PC+CFAR vs every split of the same budget ==\n\n");

  const auto machine = sim::paragon_like(64);
  bool all_ok = true;
  for (const int total : node_cases()) {
    const auto base = embedded_spec(total);
    const int budget = base.tasks[base.tasks.size() - 2].nodes +
                       base.tasks.back().nodes;

    std::vector<int> head_nodes;
    for (std::size_t i = 0; i + 2 < base.tasks.size(); ++i) {
      head_nodes.push_back(base.tasks[i].nodes);
    }

    auto merged_nodes = head_nodes;
    merged_nodes.push_back(budget);
    const double merged_latency =
        sim::SimRunner(pipeline::PipelineSpec::combined(paper_params(), merged_nodes),
                       machine)
            .run()
            .measured_latency;

    TablePrinter table("node budget " + std::to_string(budget) +
                       " for the pipeline tail @" + std::to_string(total) +
                       " total nodes (" + machine.name + ")");
    table.set_header({"PC nodes", "CFAR nodes", "latency (s)", "vs merged"});
    double best_split = 1e300;
    for (int pc = 1; pc < budget; ++pc) {
      auto nodes = head_nodes;
      nodes.push_back(pc);
      nodes.push_back(budget - pc);
      const double lat =
          sim::SimRunner(pipeline::PipelineSpec::embedded_io(paper_params(), nodes),
                         machine)
              .run()
              .measured_latency;
      best_split = std::min(best_split, lat);
      table.add_row({pc, budget - pc, TableCell(lat, 4),
                     TableCell(100.0 * (lat - merged_latency) / merged_latency, 1)});
    }
    table.add_row({"merged", "-", TableCell(merged_latency, 4), TableCell(0.0, 1)});
    std::puts(table.to_string().c_str());

    all_ok &= shape_check("@" + std::to_string(total) +
                              " nodes: merged beats the best split",
                          merged_latency < best_split);
  }

  std::printf("Merge-vs-split shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
