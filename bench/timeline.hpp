// ASCII timeline (Gantt) rendering of recorded trace events: one row per
// stream (pid — pipeline rank, I/O server, sim stage), time left to right.
// The terminal-friendly sibling of the Chrome trace export: same events,
// one glance instead of a Perfetto session.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace pstap::bench {

namespace detail {

/// Row glyph for a span. Named phases get stable letters; anything else is
/// keyed by its first character.
inline char span_glyph(const std::string& name) {
  if (name == "receive") return 'r';
  if (name == "compute") return 'c';
  if (name == "send") return 's';
  if (name == "cpi") return '=';  // outer per-CPI bracket; phases paint over it
  if (name.rfind("serve.", 0) == 0) return 'o';   // I/O server activity
  if (name.rfind("submit.", 0) == 0) return 'u';  // client submit
  return name.empty() ? 'x' : name[0];
}

}  // namespace detail

/// Render the complete spans and instant events in `events` (a
/// obs::TraceRecorder::snapshot()) as one ASCII Gantt row per pid. Longer
/// spans are painted first so nested detail (phases inside a per-CPI span)
/// stays visible on top; instants ('!') are painted last. Timestamps may be
/// wall-clock or simulated — only their relative spread matters.
inline void print_timeline(const std::vector<obs::TraceEvent>& events,
                           int width = 72) {
  using obs::TraceEvent;
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  std::int64_t t1 = std::numeric_limits<std::int64_t>::min();
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kComplete) {
      t0 = std::min(t0, e.ts_ns);
      t1 = std::max(t1, e.ts_ns + e.dur_ns);
    } else if (e.kind == TraceEvent::Kind::kInstant) {
      t0 = std::min(t0, e.ts_ns);
      t1 = std::max(t1, e.ts_ns);
    }
  }
  if (t0 >= t1) {
    std::printf("  (no trace events recorded)\n");
    return;
  }

  std::map<std::int32_t, std::string> stream_names;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kMeta) stream_names[e.pid] = e.name;
  }

  const auto col = [&](std::int64_t ts) {
    return static_cast<std::size_t>(std::clamp<std::int64_t>(
        (ts - t0) * width / (t1 - t0), 0, width - 1));
  };

  // Paint order: spans longest-first (outer before inner), instants last.
  std::vector<const TraceEvent*> spans;
  std::vector<const TraceEvent*> instants;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kComplete) spans.push_back(&e);
    if (e.kind == TraceEvent::Kind::kInstant) instants.push_back(&e);
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->dur_ns > b->dur_ns;
                   });

  std::map<std::int32_t, std::string> rows;
  std::map<char, std::string> legend;
  for (const TraceEvent* e : spans) {
    auto& row = rows.try_emplace(e->pid, std::string(static_cast<std::size_t>(width), '.'))
                    .first->second;
    const char g = detail::span_glyph(e->name);
    legend.try_emplace(g, e->name);
    const std::size_t lo = col(e->ts_ns);
    const std::size_t hi = std::max(lo, col(e->ts_ns + e->dur_ns));
    for (std::size_t c = lo; c <= hi; ++c) row[c] = g;
  }
  for (const TraceEvent* e : instants) {
    auto& row = rows.try_emplace(e->pid, std::string(static_cast<std::size_t>(width), '.'))
                    .first->second;
    legend.try_emplace('!', "instant (fault/retry)");
    row[col(e->ts_ns)] = '!';
  }

  std::size_t label_w = 6;
  for (const auto& [pid, row] : rows) {
    const auto it = stream_names.find(pid);
    const std::size_t n =
        it != stream_names.end() ? it->second.size() : std::to_string(pid).size();
    label_w = std::max(label_w, n);
  }

  std::printf("  timeline: %.3f ms, %d columns\n",
              static_cast<double>(t1 - t0) * 1e-6, width);
  for (const auto& [pid, row] : rows) {
    const auto it = stream_names.find(pid);
    const std::string label =
        it != stream_names.end() ? it->second : "pid " + std::to_string(pid);
    std::printf("  %-*s |%s|\n", static_cast<int>(label_w), label.c_str(),
                row.c_str());
  }
  std::printf("  legend:");
  for (const auto& [glyph, name] : legend) {
    std::printf(" %c=%s", glyph, name.c_str());
  }
  std::printf("\n");
}

}  // namespace pstap::bench
