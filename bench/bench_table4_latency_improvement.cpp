// Reproduces Table 4: percentage of latency improvement when the pulse
// compression and CFAR tasks are combined into a single task, per file
// system per node case — no extra nodes added.
//
// Shape targets: positive improvement everywhere, and the percentage
// *decreases* as the node count grows (parallel efficiency of the merged
// task falls off, paper §6.1).
#include <cstdio>
#include <iostream>

#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Table 4: %% latency improvement from combining PC + CFAR ==\n\n");

  TablePrinter table("latency improvement (%)");
  std::vector<TableCell> header{"file system"};
  for (const int total : node_cases()) header.push_back(std::to_string(total) + " nodes");
  table.set_header(header);

  bool all_ok = true;
  for (const auto& machine : paper_machines()) {
    std::vector<double> improvement;
    for (const int total : node_cases()) {
      const double lat7 =
          sim::SimRunner(embedded_spec(total), machine).run().measured_latency;
      const double lat6 =
          sim::SimRunner(combined_spec(total), machine).run().measured_latency;
      improvement.push_back(100.0 * (lat7 - lat6) / lat7);
    }
    std::vector<TableCell> row{machine.name};
    for (const double v : improvement) row.push_back(TableCell(v, 1));
    table.add_row(row);

    for (std::size_t i = 0; i < improvement.size(); ++i) {
      all_ok &= shape_check(machine.name + " case " + std::to_string(i + 1) +
                                ": improvement > 0",
                            improvement[i] > 0.0);
    }
    all_ok &= shape_check(machine.name + ": improvement decreases with node count",
                          improvement.front() > improvement.back());
  }

  table.print(std::cout);
  std::printf("\nTable 4 shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
