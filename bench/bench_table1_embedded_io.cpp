// Reproduces Table 1: performance of the parallel pipeline STAP system
// with I/O embedded in the Doppler filter processing task, on three
// parallel file systems x three node cases. Per-task receive / compute /
// send times plus throughput and latency.
//
// Shape targets from the paper:
//   * Paragon PFS sf=16: throughput scales 25 -> 50 but stalls at 100
//     (the I/O bottleneck inflates the Doppler receive phase);
//   * Paragon PFS sf=64: throughput and latency keep scaling;
//   * SP PIOFS (no async reads): weaker scaling despite faster CPUs;
//   * latency scales in every configuration (barely affected by the
//     bottleneck).
#include <cstdio>
#include <iostream>

#include "experiment_config.hpp"

#include "obs/report.hpp"

using namespace pstap;
using namespace pstap::bench;

int main() {
  // RunReport collection for the whole sweep: with PSTAP_REPORT set,
  // every run below lands in one document (obs/report.hpp).
  pstap::obs::ReportSession report_session;
  std::printf("== Table 1: I/O embedded in the Doppler filter processing task ==\n\n");

  bool all_ok = true;
  for (const auto& machine : paper_machines()) {
    std::vector<double> throughput, latency;
    for (std::size_t case_idx = 0; case_idx < node_cases().size(); ++case_idx) {
      const int total = node_cases()[case_idx];
      const auto spec = embedded_spec(total);
      const auto result = sim::SimRunner(spec, machine).run();
      throughput.push_back(result.measured_throughput);
      latency.push_back(result.measured_latency);

      TablePrinter table(machine.name + " — case " + std::to_string(case_idx + 1) +
                         ": total number of nodes = " + std::to_string(total));
      table.set_header({"task", "nodes", "receive", "compute", "send", "total"});
      print_case_block(table, spec, result);
      table.print(std::cout);
      std::printf("\n");
    }

    const bool paragon = machine.async_io;
    if (paragon && machine.stripe_factor <= 16) {
      all_ok &= shape_check(machine.name + ": throughput scales 25->50",
                            throughput[1] > 1.6 * throughput[0]);
      all_ok &= shape_check(machine.name + ": throughput stalls at 100 (I/O bound)",
                            throughput[2] < 1.5 * throughput[1]);
    } else if (paragon) {
      all_ok &= shape_check(machine.name + ": throughput scales linearly to 100",
                            throughput[2] > 1.7 * throughput[1] &&
                                throughput[1] > 1.7 * throughput[0]);
    }
    all_ok &= shape_check(machine.name + ": latency improves with node count",
                          latency[2] < latency[1] && latency[1] < latency[0]);
  }

  // Cross-machine claims.
  const auto sf16 = sim::paragon_like(16);
  const auto sf64 = sim::paragon_like(64);
  const auto sp = sim::sp_like(80);
  const double t16 =
      sim::SimRunner(embedded_spec(100), sf16).run().measured_throughput;
  const double t64 =
      sim::SimRunner(embedded_spec(100), sf64).run().measured_throughput;
  all_ok &= shape_check("sf=64 relieves the 100-node I/O bottleneck vs sf=16",
                        t64 > 1.2 * t16);
  const double sp_scale =
      sim::SimRunner(embedded_spec(100), sp).run().measured_throughput /
      sim::SimRunner(embedded_spec(25), sp).run().measured_throughput;
  const double pg_scale = t64 / sim::SimRunner(embedded_spec(25), sf64)
                                    .run()
                                    .measured_throughput;
  all_ok &= shape_check("SP (sync-only PIOFS) scales worse than Paragon sf=64",
                        pg_scale > 1.2 * sp_scale);

  std::printf("\nTable 1 shape checks: %s\n", all_ok ? "ALL PASS" : "FAILURES");
  return all_ok ? 0 : 1;
}
