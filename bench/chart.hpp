// ASCII bar charts for the figure-reproduction benches: each paper figure
// is a grouped bar chart of throughput and latency per node case per file
// system; we emit the same series as labelled horizontal bars.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace pstap::bench {

struct BarSeries {
  std::string title;   ///< e.g. "throughput (CPI/s) — paragon-pfs16"
  std::string unit;
  std::vector<std::pair<std::string, double>> bars;  ///< label -> value
};

inline void print_bars(const BarSeries& series, int width = 48) {
  std::printf("%s\n", series.title.c_str());
  double max_v = 1e-300;
  // Size the label column to the widest label so long labels cannot push
  // their bar out of alignment with the rest of the chart.
  std::size_t label_w = 10;
  for (const auto& [label, v] : series.bars) {
    max_v = std::max(max_v, v);
    label_w = std::max(label_w, label.size());
  }
  for (const auto& [label, v] : series.bars) {
    const int n = std::clamp(static_cast<int>(width * v / max_v + 0.5), 0, width);
    std::printf("  %-*s |%-*s| %.4g %s\n", static_cast<int>(label_w),
                label.c_str(), width,
                std::string(static_cast<std::size_t>(n), '#').c_str(), v,
                series.unit.c_str());
  }
  std::printf("\n");
}

}  // namespace pstap::bench
