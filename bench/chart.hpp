// ASCII bar charts for the figure-reproduction benches: each paper figure
// is a grouped bar chart of throughput and latency per node case per file
// system; we emit the same series as labelled horizontal bars.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace pstap::bench {

struct BarSeries {
  std::string title;   ///< e.g. "throughput (CPI/s) — paragon-pfs16"
  std::string unit;
  std::vector<std::pair<std::string, double>> bars;  ///< label -> value
};

inline void print_bars(const BarSeries& series, int width = 48) {
  std::printf("%s\n", series.title.c_str());
  double max_v = 1e-300;
  for (const auto& [label, v] : series.bars) max_v = std::max(max_v, v);
  for (const auto& [label, v] : series.bars) {
    const int n = static_cast<int>(width * v / max_v + 0.5);
    std::printf("  %-10s |%-*s| %.4g %s\n", label.c_str(), width,
                std::string(static_cast<std::size_t>(std::max(n, 0)), '#').c_str(), v,
                series.unit.c_str());
  }
  std::printf("\n");
}

}  // namespace pstap::bench
