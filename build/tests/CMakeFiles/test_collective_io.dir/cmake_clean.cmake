file(REMOVE_RECURSE
  "CMakeFiles/test_collective_io.dir/test_collective_io.cpp.o"
  "CMakeFiles/test_collective_io.dir/test_collective_io.cpp.o.d"
  "test_collective_io"
  "test_collective_io.pdb"
  "test_collective_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
