
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_paper_shapes.cpp" "tests/CMakeFiles/test_paper_shapes.dir/test_paper_shapes.cpp.o" "gcc" "tests/CMakeFiles/test_paper_shapes.dir/test_paper_shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pstap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/pstap_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/pstap_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/stap/CMakeFiles/pstap_stap.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/pstap_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pstap_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pstap_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
