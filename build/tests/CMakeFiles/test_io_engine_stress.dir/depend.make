# Empty dependencies file for test_io_engine_stress.
# This may be replaced when dependencies are built.
