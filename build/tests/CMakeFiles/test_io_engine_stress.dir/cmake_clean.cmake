file(REMOVE_RECURSE
  "CMakeFiles/test_io_engine_stress.dir/test_io_engine_stress.cpp.o"
  "CMakeFiles/test_io_engine_stress.dir/test_io_engine_stress.cpp.o.d"
  "test_io_engine_stress"
  "test_io_engine_stress.pdb"
  "test_io_engine_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_engine_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
