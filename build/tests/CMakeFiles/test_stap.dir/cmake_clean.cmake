file(REMOVE_RECURSE
  "CMakeFiles/test_stap.dir/test_stap.cpp.o"
  "CMakeFiles/test_stap.dir/test_stap.cpp.o.d"
  "test_stap"
  "test_stap.pdb"
  "test_stap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
