# Empty compiler generated dependencies file for test_stap.
# This may be replaced when dependencies are built.
