file(REMOVE_RECURSE
  "CMakeFiles/test_detection_log.dir/test_detection_log.cpp.o"
  "CMakeFiles/test_detection_log.dir/test_detection_log.cpp.o.d"
  "test_detection_log"
  "test_detection_log.pdb"
  "test_detection_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detection_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
