# Empty dependencies file for test_detection_log.
# This may be replaced when dependencies are built.
