# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_mp[1]_include.cmake")
include("/root/repo/build/tests/test_pfs[1]_include.cmake")
include("/root/repo/build/tests/test_stap[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_chain[1]_include.cmake")
include("/root/repo/build/tests/test_collective_io[1]_include.cmake")
include("/root/repo/build/tests/test_detection_log[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_io_engine_stress[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
