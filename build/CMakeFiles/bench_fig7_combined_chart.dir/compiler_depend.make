# Empty compiler generated dependencies file for bench_fig7_combined_chart.
# This may be replaced when dependencies are built.
