file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_combined_chart.dir/bench/bench_fig7_combined_chart.cpp.o"
  "CMakeFiles/bench_fig7_combined_chart.dir/bench/bench_fig7_combined_chart.cpp.o.d"
  "bench/bench_fig7_combined_chart"
  "bench/bench_fig7_combined_chart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_combined_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
