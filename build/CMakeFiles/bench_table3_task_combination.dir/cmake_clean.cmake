file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_task_combination.dir/bench/bench_table3_task_combination.cpp.o"
  "CMakeFiles/bench_table3_task_combination.dir/bench/bench_table3_task_combination.cpp.o.d"
  "bench/bench_table3_task_combination"
  "bench/bench_table3_task_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_task_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
