# Empty compiler generated dependencies file for bench_table3_task_combination.
# This may be replaced when dependencies are built.
