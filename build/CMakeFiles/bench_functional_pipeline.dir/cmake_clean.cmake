file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_pipeline.dir/bench/bench_functional_pipeline.cpp.o"
  "CMakeFiles/bench_functional_pipeline.dir/bench/bench_functional_pipeline.cpp.o.d"
  "bench/bench_functional_pipeline"
  "bench/bench_functional_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
