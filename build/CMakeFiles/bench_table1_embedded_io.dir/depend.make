# Empty dependencies file for bench_table1_embedded_io.
# This may be replaced when dependencies are built.
