file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_combine_comparison.dir/bench/bench_fig8_combine_comparison.cpp.o"
  "CMakeFiles/bench_fig8_combine_comparison.dir/bench/bench_fig8_combine_comparison.cpp.o.d"
  "bench/bench_fig8_combine_comparison"
  "bench/bench_fig8_combine_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_combine_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
