# Empty dependencies file for bench_fig8_combine_comparison.
# This may be replaced when dependencies are built.
