# Empty compiler generated dependencies file for bench_ablation_async_io.
# This may be replaced when dependencies are built.
