file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_separate_io_chart.dir/bench/bench_fig6_separate_io_chart.cpp.o"
  "CMakeFiles/bench_fig6_separate_io_chart.dir/bench/bench_fig6_separate_io_chart.cpp.o.d"
  "bench/bench_fig6_separate_io_chart"
  "bench/bench_fig6_separate_io_chart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_separate_io_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
