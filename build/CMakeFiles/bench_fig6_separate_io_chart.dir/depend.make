# Empty dependencies file for bench_fig6_separate_io_chart.
# This may be replaced when dependencies are built.
