# Empty compiler generated dependencies file for bench_fig5_embedded_io_chart.
# This may be replaced when dependencies are built.
