file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_latency_improvement.dir/bench/bench_table4_latency_improvement.cpp.o"
  "CMakeFiles/bench_table4_latency_improvement.dir/bench/bench_table4_latency_improvement.cpp.o.d"
  "bench/bench_table4_latency_improvement"
  "bench/bench_table4_latency_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_latency_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
