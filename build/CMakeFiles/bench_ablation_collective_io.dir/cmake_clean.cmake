file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_collective_io.dir/bench/bench_ablation_collective_io.cpp.o"
  "CMakeFiles/bench_ablation_collective_io.dir/bench/bench_ablation_collective_io.cpp.o.d"
  "bench/bench_ablation_collective_io"
  "bench/bench_ablation_collective_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_collective_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
