file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_separate_io.dir/bench/bench_table2_separate_io.cpp.o"
  "CMakeFiles/bench_table2_separate_io.dir/bench/bench_table2_separate_io.cpp.o.d"
  "bench/bench_table2_separate_io"
  "bench/bench_table2_separate_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_separate_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
