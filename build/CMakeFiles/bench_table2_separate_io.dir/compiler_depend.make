# Empty compiler generated dependencies file for bench_table2_separate_io.
# This may be replaced when dependencies are built.
