file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stripe_sweep.dir/bench/bench_ablation_stripe_sweep.cpp.o"
  "CMakeFiles/bench_ablation_stripe_sweep.dir/bench/bench_ablation_stripe_sweep.cpp.o.d"
  "bench/bench_ablation_stripe_sweep"
  "bench/bench_ablation_stripe_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stripe_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
