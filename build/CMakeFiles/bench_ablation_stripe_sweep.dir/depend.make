# Empty dependencies file for bench_ablation_stripe_sweep.
# This may be replaced when dependencies are built.
