file(REMOVE_RECURSE
  "CMakeFiles/bench_pfs.dir/bench/bench_pfs.cpp.o"
  "CMakeFiles/bench_pfs.dir/bench/bench_pfs.cpp.o.d"
  "bench/bench_pfs"
  "bench/bench_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
