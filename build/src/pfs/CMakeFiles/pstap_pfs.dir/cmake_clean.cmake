file(REMOVE_RECURSE
  "CMakeFiles/pstap_pfs.dir/io_engine.cpp.o"
  "CMakeFiles/pstap_pfs.dir/io_engine.cpp.o.d"
  "CMakeFiles/pstap_pfs.dir/striped_file_system.cpp.o"
  "CMakeFiles/pstap_pfs.dir/striped_file_system.cpp.o.d"
  "libpstap_pfs.a"
  "libpstap_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
