file(REMOVE_RECURSE
  "libpstap_pfs.a"
)
