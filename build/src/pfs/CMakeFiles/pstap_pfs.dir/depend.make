# Empty dependencies file for pstap_pfs.
# This may be replaced when dependencies are built.
