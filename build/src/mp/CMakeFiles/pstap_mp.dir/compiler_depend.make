# Empty compiler generated dependencies file for pstap_mp.
# This may be replaced when dependencies are built.
