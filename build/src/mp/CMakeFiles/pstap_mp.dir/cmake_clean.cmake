file(REMOVE_RECURSE
  "CMakeFiles/pstap_mp.dir/comm.cpp.o"
  "CMakeFiles/pstap_mp.dir/comm.cpp.o.d"
  "CMakeFiles/pstap_mp.dir/world.cpp.o"
  "CMakeFiles/pstap_mp.dir/world.cpp.o.d"
  "libpstap_mp.a"
  "libpstap_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
