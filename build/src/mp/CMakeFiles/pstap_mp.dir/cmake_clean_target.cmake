file(REMOVE_RECURSE
  "libpstap_mp.a"
)
