file(REMOVE_RECURSE
  "libpstap_linalg.a"
)
