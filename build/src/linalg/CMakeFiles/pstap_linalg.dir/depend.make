# Empty dependencies file for pstap_linalg.
# This may be replaced when dependencies are built.
