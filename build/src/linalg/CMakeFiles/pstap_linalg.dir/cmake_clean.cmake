file(REMOVE_RECURSE
  "CMakeFiles/pstap_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/pstap_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/pstap_linalg.dir/qr.cpp.o"
  "CMakeFiles/pstap_linalg.dir/qr.cpp.o.d"
  "libpstap_linalg.a"
  "libpstap_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
