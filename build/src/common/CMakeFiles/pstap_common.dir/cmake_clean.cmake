file(REMOVE_RECURSE
  "CMakeFiles/pstap_common.dir/error.cpp.o"
  "CMakeFiles/pstap_common.dir/error.cpp.o.d"
  "CMakeFiles/pstap_common.dir/fault.cpp.o"
  "CMakeFiles/pstap_common.dir/fault.cpp.o.d"
  "CMakeFiles/pstap_common.dir/table.cpp.o"
  "CMakeFiles/pstap_common.dir/table.cpp.o.d"
  "libpstap_common.a"
  "libpstap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
