file(REMOVE_RECURSE
  "libpstap_common.a"
)
