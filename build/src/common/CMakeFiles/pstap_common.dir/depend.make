# Empty dependencies file for pstap_common.
# This may be replaced when dependencies are built.
