# Empty dependencies file for pstap_fft.
# This may be replaced when dependencies are built.
