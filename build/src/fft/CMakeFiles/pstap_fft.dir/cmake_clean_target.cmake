file(REMOVE_RECURSE
  "libpstap_fft.a"
)
