file(REMOVE_RECURSE
  "CMakeFiles/pstap_fft.dir/fft.cpp.o"
  "CMakeFiles/pstap_fft.dir/fft.cpp.o.d"
  "libpstap_fft.a"
  "libpstap_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
