# Empty compiler generated dependencies file for pstap_stap.
# This may be replaced when dependencies are built.
