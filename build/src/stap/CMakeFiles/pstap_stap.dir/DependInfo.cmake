
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stap/beamform.cpp" "src/stap/CMakeFiles/pstap_stap.dir/beamform.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/beamform.cpp.o.d"
  "/root/repo/src/stap/cfar.cpp" "src/stap/CMakeFiles/pstap_stap.dir/cfar.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/cfar.cpp.o.d"
  "/root/repo/src/stap/chain.cpp" "src/stap/CMakeFiles/pstap_stap.dir/chain.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/chain.cpp.o.d"
  "/root/repo/src/stap/cube_io.cpp" "src/stap/CMakeFiles/pstap_stap.dir/cube_io.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/cube_io.cpp.o.d"
  "/root/repo/src/stap/data_cube.cpp" "src/stap/CMakeFiles/pstap_stap.dir/data_cube.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/data_cube.cpp.o.d"
  "/root/repo/src/stap/detection_log.cpp" "src/stap/CMakeFiles/pstap_stap.dir/detection_log.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/detection_log.cpp.o.d"
  "/root/repo/src/stap/doppler.cpp" "src/stap/CMakeFiles/pstap_stap.dir/doppler.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/doppler.cpp.o.d"
  "/root/repo/src/stap/pulse_compress.cpp" "src/stap/CMakeFiles/pstap_stap.dir/pulse_compress.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/pulse_compress.cpp.o.d"
  "/root/repo/src/stap/radar_params.cpp" "src/stap/CMakeFiles/pstap_stap.dir/radar_params.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/radar_params.cpp.o.d"
  "/root/repo/src/stap/scene.cpp" "src/stap/CMakeFiles/pstap_stap.dir/scene.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/scene.cpp.o.d"
  "/root/repo/src/stap/steering.cpp" "src/stap/CMakeFiles/pstap_stap.dir/steering.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/steering.cpp.o.d"
  "/root/repo/src/stap/weights.cpp" "src/stap/CMakeFiles/pstap_stap.dir/weights.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/weights.cpp.o.d"
  "/root/repo/src/stap/workload.cpp" "src/stap/CMakeFiles/pstap_stap.dir/workload.cpp.o" "gcc" "src/stap/CMakeFiles/pstap_stap.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/pstap_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/pstap_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/pstap_pfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
