file(REMOVE_RECURSE
  "libpstap_stap.a"
)
