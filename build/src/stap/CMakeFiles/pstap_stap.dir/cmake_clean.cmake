file(REMOVE_RECURSE
  "CMakeFiles/pstap_stap.dir/beamform.cpp.o"
  "CMakeFiles/pstap_stap.dir/beamform.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/cfar.cpp.o"
  "CMakeFiles/pstap_stap.dir/cfar.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/chain.cpp.o"
  "CMakeFiles/pstap_stap.dir/chain.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/cube_io.cpp.o"
  "CMakeFiles/pstap_stap.dir/cube_io.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/data_cube.cpp.o"
  "CMakeFiles/pstap_stap.dir/data_cube.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/detection_log.cpp.o"
  "CMakeFiles/pstap_stap.dir/detection_log.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/doppler.cpp.o"
  "CMakeFiles/pstap_stap.dir/doppler.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/pulse_compress.cpp.o"
  "CMakeFiles/pstap_stap.dir/pulse_compress.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/radar_params.cpp.o"
  "CMakeFiles/pstap_stap.dir/radar_params.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/scene.cpp.o"
  "CMakeFiles/pstap_stap.dir/scene.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/steering.cpp.o"
  "CMakeFiles/pstap_stap.dir/steering.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/weights.cpp.o"
  "CMakeFiles/pstap_stap.dir/weights.cpp.o.d"
  "CMakeFiles/pstap_stap.dir/workload.cpp.o"
  "CMakeFiles/pstap_stap.dir/workload.cpp.o.d"
  "libpstap_stap.a"
  "libpstap_stap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_stap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
