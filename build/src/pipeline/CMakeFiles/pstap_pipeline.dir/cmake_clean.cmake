file(REMOVE_RECURSE
  "CMakeFiles/pstap_pipeline.dir/collective_read.cpp.o"
  "CMakeFiles/pstap_pipeline.dir/collective_read.cpp.o.d"
  "CMakeFiles/pstap_pipeline.dir/metrics.cpp.o"
  "CMakeFiles/pstap_pipeline.dir/metrics.cpp.o.d"
  "CMakeFiles/pstap_pipeline.dir/task_spec.cpp.o"
  "CMakeFiles/pstap_pipeline.dir/task_spec.cpp.o.d"
  "CMakeFiles/pstap_pipeline.dir/thread_runner.cpp.o"
  "CMakeFiles/pstap_pipeline.dir/thread_runner.cpp.o.d"
  "libpstap_pipeline.a"
  "libpstap_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
