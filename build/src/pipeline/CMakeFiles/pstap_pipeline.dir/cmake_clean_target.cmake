file(REMOVE_RECURSE
  "libpstap_pipeline.a"
)
