# Empty compiler generated dependencies file for pstap_pipeline.
# This may be replaced when dependencies are built.
