# Empty dependencies file for pstap_sim.
# This may be replaced when dependencies are built.
