file(REMOVE_RECURSE
  "CMakeFiles/pstap_sim.dir/cost_model.cpp.o"
  "CMakeFiles/pstap_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/pstap_sim.dir/machine.cpp.o"
  "CMakeFiles/pstap_sim.dir/machine.cpp.o.d"
  "CMakeFiles/pstap_sim.dir/sim_runner.cpp.o"
  "CMakeFiles/pstap_sim.dir/sim_runner.cpp.o.d"
  "libpstap_sim.a"
  "libpstap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
