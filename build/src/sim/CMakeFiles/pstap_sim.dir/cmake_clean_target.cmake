file(REMOVE_RECURSE
  "libpstap_sim.a"
)
