# Empty dependencies file for detection_replay.
# This may be replaced when dependencies are built.
