file(REMOVE_RECURSE
  "CMakeFiles/detection_replay.dir/detection_replay.cpp.o"
  "CMakeFiles/detection_replay.dir/detection_replay.cpp.o.d"
  "detection_replay"
  "detection_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
