# Empty dependencies file for task_fusion_study.
# This may be replaced when dependencies are built.
