file(REMOVE_RECURSE
  "CMakeFiles/task_fusion_study.dir/task_fusion_study.cpp.o"
  "CMakeFiles/task_fusion_study.dir/task_fusion_study.cpp.o.d"
  "task_fusion_study"
  "task_fusion_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_fusion_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
