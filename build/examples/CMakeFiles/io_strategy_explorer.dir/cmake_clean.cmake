file(REMOVE_RECURSE
  "CMakeFiles/io_strategy_explorer.dir/io_strategy_explorer.cpp.o"
  "CMakeFiles/io_strategy_explorer.dir/io_strategy_explorer.cpp.o.d"
  "io_strategy_explorer"
  "io_strategy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_strategy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
