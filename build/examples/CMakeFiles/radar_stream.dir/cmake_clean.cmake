file(REMOVE_RECURSE
  "CMakeFiles/radar_stream.dir/radar_stream.cpp.o"
  "CMakeFiles/radar_stream.dir/radar_stream.cpp.o.d"
  "radar_stream"
  "radar_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radar_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
