# Empty compiler generated dependencies file for radar_stream.
# This may be replaced when dependencies are built.
